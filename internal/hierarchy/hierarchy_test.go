package hierarchy

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
)

var t0 = time.Unix(1000, 0)

// buildPaperDAG reproduces the job from the paper's Fig. 3/4:
//
//	T1 T2 T3 T4      (roots)
//	T5 ← T1,T2       T6 ← T4
//	T7 ← T5,T3,T6
//	T8 ← T7          T9 ← T7
func buildPaperDAG(t *testing.T) *Hierarchy {
	t.Helper()
	h := New("job", time.Second, t0)
	mk := func(path core.Path, extra ...core.Path) {
		if _, err := h.Create(path, extra, core.DSFile, time.Second, t0); err != nil {
			t.Fatalf("create %q: %v", path, err)
		}
	}
	mk("job/T1")
	mk("job/T2")
	mk("job/T3")
	mk("job/T4")
	mk("job/T1/T5", "job/T2")
	mk("job/T4/T6")
	mk("job/T1/T5/T7", "job/T3", "job/T4/T6")
	mk("job/T1/T5/T7/T8")
	mk("job/T1/T5/T7/T9")
	return h
}

func TestResolveMultiPath(t *testing.T) {
	h := buildPaperDAG(t)
	// T7 has four valid address prefixes (footnote 3 in the paper).
	paths := []core.Path{
		"job/T4/T6/T7",
		"job/T3/T7",
		"job/T2/T5/T7",
		"job/T1/T5/T7",
	}
	var first *Node
	for _, p := range paths {
		n, err := h.Resolve(p)
		if err != nil {
			t.Fatalf("resolve %q: %v", p, err)
		}
		if first == nil {
			first = n
		} else if n != first {
			t.Errorf("path %q resolved to a different node", p)
		}
	}
	if first.Name != "T7" {
		t.Errorf("resolved node = %q", first.Name)
	}
}

func TestResolveInvalidPaths(t *testing.T) {
	h := buildPaperDAG(t)
	for _, p := range []core.Path{
		"job/T9/T7",    // edge direction wrong
		"job/T1/T7",    // T7 is not a direct child of T1
		"otherjob/T1",  // wrong root
		"job/TX",       // unknown node
		"job/T1/T5/TX", // unknown leaf
	} {
		if _, err := h.Resolve(p); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("resolve %q = %v, want ErrNotFound", p, err)
		}
	}
}

func TestCreateDuplicate(t *testing.T) {
	h := buildPaperDAG(t)
	if _, err := h.Create("job/T1", nil, core.DSNone, time.Second, t0); !errors.Is(err, core.ErrExists) {
		t.Errorf("duplicate create = %v", err)
	}
	if _, err := h.Create("job/TX/TY", nil, core.DSNone, time.Second, t0); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("create under missing parent = %v", err)
	}
}

// TestRenewPropagation verifies the Fig. 5 rule: renewing T7 renews
// its direct parents (T3, T5, T6) and all descendants (T8, T9), but
// not grandparents (T1, T2, T4).
func TestRenewPropagation(t *testing.T) {
	h := buildPaperDAG(t)
	later := t0.Add(10 * time.Second)
	touched, err := h.Renew("job/T4/T6/T7", later)
	if err != nil {
		t.Fatal(err)
	}
	// T7 + parents {T3,T5,T6} + descendants {T8,T9} = 6 nodes.
	if touched != 6 {
		t.Errorf("touched = %d, want 6", touched)
	}
	renewed := map[string]bool{"T7": true, "T3": true, "T5": true, "T6": true, "T8": true, "T9": true}
	h.Walk(func(n *Node) bool {
		want := renewed[n.Name]
		got := n.LastRenewed.Equal(later)
		if n.Name != "job" && want != got {
			t.Errorf("node %s renewed=%v, want %v", n.Name, got, want)
		}
		return true
	})
}

func TestRenewMonotonic(t *testing.T) {
	h := buildPaperDAG(t)
	h.Renew("job/T1", t0.Add(10*time.Second))
	// A renewal with an older timestamp must not move timestamps back.
	h.Renew("job/T1", t0.Add(5*time.Second))
	n, _ := h.Resolve("job/T1")
	if !n.LastRenewed.Equal(t0.Add(10 * time.Second)) {
		t.Errorf("timestamp moved backwards: %v", n.LastRenewed)
	}
}

func TestExpired(t *testing.T) {
	h := buildPaperDAG(t)
	// Renew only T7's cluster; everything else expires.
	h.Renew("job/T1/T5/T7", t0.Add(5*time.Second))
	expired := h.Expired(t0.Add(6 * time.Second))
	names := map[string]bool{}
	for _, n := range expired {
		names[n.Name] = true
	}
	for _, want := range []string{"T1", "T2", "T4"} {
		if !names[want] {
			t.Errorf("%s should be expired", want)
		}
	}
	for _, live := range []string{"T3", "T5", "T6", "T7", "T8", "T9"} {
		if names[live] {
			t.Errorf("%s should be live", live)
		}
	}
}

func TestExpiredOrderIsBottomUp(t *testing.T) {
	h := New("job", time.Second, t0)
	h.Create("job/A", nil, core.DSNone, time.Second, t0)
	h.Create("job/A/B", nil, core.DSNone, time.Second, t0)
	h.Create("job/A/B/C", nil, core.DSNone, time.Second, t0)
	expired := h.Expired(t0.Add(time.Hour))
	pos := map[string]int{}
	for i, n := range expired {
		pos[n.Name] = i
	}
	if !(pos["C"] < pos["B"] && pos["B"] < pos["A"]) {
		t.Errorf("expiry order not bottom-up: %v", pos)
	}
	// Bottom-up removal succeeds.
	for _, n := range expired {
		if err := h.Remove(n.Name); err != nil {
			t.Errorf("remove %s: %v", n.Name, err)
		}
	}
	if h.Len() != 1 {
		t.Errorf("nodes left = %d, want 1 (root)", h.Len())
	}
}

func TestRemoveGuards(t *testing.T) {
	h := buildPaperDAG(t)
	if err := h.Remove("T5"); err == nil {
		t.Error("removing node with children should fail")
	}
	if err := h.Remove("job"); err == nil {
		t.Error("removing root should fail")
	}
	if err := h.Remove("nope"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("removing unknown = %v", err)
	}
	if err := h.Remove("T8"); err != nil {
		t.Errorf("removing leaf = %v", err)
	}
	if _, err := h.Resolve("job/T1/T5/T7/T8"); !errors.Is(err, core.ErrNotFound) {
		t.Error("removed node still resolvable")
	}
}

func TestAddEdge(t *testing.T) {
	h := buildPaperDAG(t)
	// A valid late-discovered dependency: T9 also depends on T6.
	if err := h.AddEdge("T6", "T9"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Resolve("job/T4/T6/T9"); err != nil {
		t.Errorf("new edge not resolvable: %v", err)
	}
	// Duplicate edge is a no-op.
	if err := h.AddEdge("T6", "T9"); err != nil {
		t.Errorf("duplicate edge = %v", err)
	}
	// Cycle rejected: T7 → T5 when T5 → T7 exists.
	if err := h.AddEdge("T7", "T5"); err == nil {
		t.Error("cycle accepted")
	}
	if err := h.AddEdge("T1", "T1"); err == nil {
		t.Error("self-loop accepted")
	}
	if err := h.AddEdge("nope", "T1"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("edge from missing parent = %v", err)
	}
}

func TestWalkVisitsEachNodeOnce(t *testing.T) {
	h := buildPaperDAG(t)
	count := map[string]int{}
	h.Walk(func(n *Node) bool {
		count[n.Name]++
		return true
	})
	if len(count) != 10 { // root + T1..T9
		t.Errorf("visited %d distinct nodes, want 10", len(count))
	}
	for name, c := range count {
		if c != 1 {
			t.Errorf("node %s visited %d times", name, c)
		}
	}
	// Early stop.
	visits := 0
	h.Walk(func(n *Node) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early stop visited %d nodes", visits)
	}
}

func TestCanonicalPath(t *testing.T) {
	h := buildPaperDAG(t)
	n, _ := h.Lookup("T7")
	p := n.CanonicalPath()
	if _, err := h.Resolve(p); err != nil {
		t.Errorf("canonical path %q does not resolve: %v", p, err)
	}
}

func TestMetadataBytes(t *testing.T) {
	h := buildPaperDAG(t)
	base := h.MetadataBytes()
	if base != 10*64 { // 10 tasks, no blocks yet
		t.Errorf("metadata = %d, want 640", base)
	}
	n, _ := h.Lookup("T5")
	n.Map.Blocks = append(n.Map.Blocks, ds.PartitionEntry{Info: core.BlockInfo{ID: 1}})
	if got := h.MetadataBytes(); got != base+8 {
		t.Errorf("metadata with 1 block = %d, want %d", got, base+8)
	}
}

// TestLeaseInvariantProperty: after renewing any node, that node's
// direct parents and all descendants are never older than it.
func TestLeaseInvariantProperty(t *testing.T) {
	f := func(renewSeq []uint8) bool {
		h := buildPaperDAG(t)
		names := []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9"}
		now := t0
		for _, r := range renewSeq {
			now = now.Add(time.Second)
			name := names[int(r)%len(names)]
			n, _ := h.Lookup(name)
			if _, err := h.Renew(n.CanonicalPath(), now); err != nil {
				return false
			}
			// Invariant check.
			for _, p := range n.Parents() {
				if p.LastRenewed.Before(n.LastRenewed) {
					return false
				}
			}
			ok := true
			var checkDown func(m *Node)
			checkDown = func(m *Node) {
				for _, c := range m.Children() {
					if c.LastRenewed.Before(n.LastRenewed) {
						ok = false
					}
					checkDown(c)
				}
			}
			checkDown(n)
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLargeHierarchyScale(t *testing.T) {
	// Unlike hardware page tables, the hierarchy supports arbitrary
	// DAG sizes (§3.1); sanity-check a 1000-task 3-stage job.
	h := New("big", time.Second, t0)
	for s := 0; s < 10; s++ {
		for i := 0; i < 100; i++ {
			name := fmt.Sprintf("s%d_t%d", s, i)
			var path core.Path
			var extra []core.Path
			if s == 0 {
				path = core.Path("big").MustChild(name)
			} else {
				parent := fmt.Sprintf("s%d_t%d", s-1, i)
				pn, _ := h.Lookup(parent)
				path = pn.CanonicalPath().MustChild(name)
				// Fan-in edge from a second upstream task.
				extra = []core.Path{}
				if i > 0 {
					pn2, _ := h.Lookup(fmt.Sprintf("s%d_t%d", s-1, i-1))
					extra = append(extra, pn2.CanonicalPath())
				}
			}
			if _, err := h.Create(path, extra, core.DSKV, time.Second, t0); err != nil {
				t.Fatalf("create %s: %v", name, err)
			}
		}
	}
	if h.Len() != 1001 {
		t.Fatalf("nodes = %d", h.Len())
	}
	// Renewing a final-stage task touches its whole downstream cone
	// plus direct parents — and completes fast.
	n, _ := h.Lookup("s9_t50")
	start := time.Now()
	if _, err := h.Renew(n.CanonicalPath(), t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("renew took %v", d)
	}
}
