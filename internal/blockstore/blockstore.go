// Package blockstore implements the memory-server data plane core: a
// container of fixed-size blocks, each hosting one data-structure
// partition, with usage tracking against the high/low repartition
// thresholds (§3.3). When a mutation pushes a block across a threshold
// the store invokes the overload/underload signal callback — the first
// step of the Fig. 8 repartitioning protocol. The RPC surface around
// this container lives in internal/server.
package blockstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/obs"
)

// Signal is the threshold-crossing callback: over is true for a
// high-threshold (overload) crossing, false for a low-threshold
// (underload) crossing. Called synchronously from the mutating
// operation's goroutine; implementations should hand off to a worker.
type Signal func(path core.Path, block core.BlockID, over bool)

// Block is one hosted memory block.
type Block struct {
	ID        core.BlockID
	Path      core.Path
	Partition ds.Partition
	// Chunk is the file chunk index or queue segment sequence number.
	Chunk int
	// Tenant caches the path's job component (Path.Job splits the path
	// string on every call; admission control needs the tenant on every
	// data op). Set at creation alongside Path.
	Tenant string

	// chain is the block's replication chain (nil = unreplicated),
	// behind an atomic pointer: chain repair replaces it in place while
	// the data path reads it lock-free on every mutation.
	chain atomic.Pointer[core.ReplicaChain]

	// signaled tracks the threshold state to de-duplicate signals:
	// 0 = normal, 1 = over signaled, -1 = under signaled.
	signaled atomic.Int32
	// armedUnder becomes true once usage exceeds the low threshold, so
	// freshly created empty blocks don't immediately signal underload.
	armedUnder atomic.Bool

	// Replication ordering state (only used when the chain is
	// non-empty). At the chain head, replMu serializes mutation
	// application with sequence assignment so the propagation stream's
	// sequence order equals local apply order; at replicas,
	// applySeq/applyCond make forwarded mutations apply in that same
	// order even though the RPC layer dispatches them concurrently.
	// replGen identifies the chain configuration the sequence stream
	// belongs to: a repair splice resets the sequence counters and bumps
	// the generation, so stragglers from the old chain fail fast instead
	// of waiting for sequence numbers that will never arrive.
	replMu    sync.Mutex
	replSeq   uint64
	replGen   uint64
	applySeq  uint64
	applyCond *sync.Cond

	// sealed permanently fences the block against mutations (reads keep
	// serving): a drain seals the source before taking its migration
	// snapshot, so no write can be acknowledged that the snapshot might
	// miss. Never cleared — a sealed block is about to be deleted.
	sealed atomic.Bool

	// NumSlots is the KV hash-slot space size the partition was created
	// with, recorded so a demoted block can be rebuilt with the same
	// layout on rehydration.
	NumSlots int

	// Tiering state. tierState is the block's residency (TierMemory /
	// TierDemoting / TierTiered); ops pin it resident via BeginOp/EndOp
	// before touching the partition, and the demotion path flips it to
	// Demoting then waits for inflight to drain before snapshotting.
	// lastAccess/promotedAt are heat timestamps in store heat units
	// (see Store.HeatNow) — stamped allocation-free on the data path.
	tierState  atomic.Int32
	inflight   atomic.Int64
	lastAccess atomic.Int64
	promotedAt atomic.Int64

	// TierMu serializes demotion and rehydration for this block and
	// guards TierKey/TierGen. It is never held while the partition is
	// serving ops — only across the tier state transitions themselves.
	TierMu sync.Mutex
	// TierKey is the persist-tier key holding the demoted object
	// ("" when resident). TierGen fences stale tier objects: it bumps
	// on every demotion, and the controller ignores reports older than
	// the generation it has recorded.
	TierKey string
	TierGen uint64
}

// Tier states for Block.tierState.
const (
	// TierMemory: resident, serving ops.
	TierMemory int32 = iota
	// TierDemoting: a demotion is draining in-flight ops; new ops wait
	// for the transition to finish and then rehydrate.
	TierDemoting
	// TierTiered: the partition's contents live in the persist tier;
	// first access rehydrates.
	TierTiered
)

// TierState returns the block's residency state.
func (b *Block) TierState() int32 { return b.tierState.Load() }

// SetTierState publishes a residency transition. Callers hold TierMu.
func (b *Block) SetTierState(s int32) { b.tierState.Store(s) }

// BeginOp pins the block resident for one operation. It returns false
// when the block is not in memory (tiered, or a demotion is in
// flight) — the caller must rehydrate and retry. The recheck after
// incrementing closes the race with a concurrent demotion: the
// demoter flips the state to Demoting first and then waits for
// inflight to reach zero, so an op that raced past the first check is
// either counted (demotion waits for it) or bounced here.
func (b *Block) BeginOp() bool {
	if b.tierState.Load() != TierMemory {
		return false
	}
	b.inflight.Add(1)
	if b.tierState.Load() != TierMemory {
		b.inflight.Add(-1)
		return false
	}
	return true
}

// EndOp releases the residency pin taken by BeginOp.
func (b *Block) EndOp() { b.inflight.Add(-1) }

// Inflight returns the number of operations currently pinning the
// block resident.
func (b *Block) Inflight() int64 { return b.inflight.Load() }

// Touch stamps the block's last-access time with the store's current
// heat value — one atomic store, no clock read, on the data path.
func (b *Block) Touch(heat int64) { b.lastAccess.Store(heat) }

// LastAccess returns the block's last-access heat stamp.
func (b *Block) LastAccess() int64 { return b.lastAccess.Load() }

// PromotedAt returns the heat stamp of the block's creation or last
// rehydration — the anchor of the anti-thrash cooldown window.
func (b *Block) PromotedAt() int64 { return b.promotedAt.Load() }

// SetPromotedAt stamps the promotion time (creation and rehydration).
func (b *Block) SetPromotedAt(heat int64) { b.promotedAt.Store(heat) }

// Chain returns the block's current replication chain (nil when
// unreplicated). The returned slice must not be mutated.
func (b *Block) Chain() core.ReplicaChain {
	if p := b.chain.Load(); p != nil {
		return *p
	}
	return nil
}

// SetChain installs a replication chain and generation, resetting the
// sequence stream: the chain's members were just (re)synchronized by
// snapshot, so the next mutation starts a fresh stream at sequence 0.
// Waiters from the previous generation are woken and fail fast.
func (b *Block) SetChain(chain core.ReplicaChain, gen uint64) {
	b.replMu.Lock()
	b.chain.Store(&chain)
	b.replSeq = 0
	b.applySeq = 0
	b.replGen = gen
	if b.applyCond != nil {
		b.applyCond.Broadcast()
	}
	b.replMu.Unlock()
}

// Seal permanently fences the block against mutations; reads still
// serve. Head-side, unreplicated, and forwarded writes all fail with
// ErrStaleEpoch from the moment Seal returns, and replicas waiting on
// the sequence stream are woken to fail fast.
func (b *Block) Seal() {
	b.replMu.Lock()
	b.sealed.Store(true)
	if b.applyCond != nil {
		b.applyCond.Broadcast()
	}
	b.replMu.Unlock()
}

// Sealed reports whether the block has been fenced by Seal.
func (b *Block) Sealed() bool { return b.sealed.Load() }

// NextReplSeq atomically applies a head-side mutation via fn and
// assigns it the next replication sequence number, stamped with the
// chain generation it belongs to. The chain snapshot is read under the
// same lock SetChain writes it, so the returned chain always matches
// the returned generation — a concurrent repair splice can never pair
// a new generation with the old layout.
func (b *Block) NextReplSeq(fn func() ([][]byte, error)) (res [][]byte, chain core.ReplicaChain, seq, gen uint64, err error) {
	b.replMu.Lock()
	defer b.replMu.Unlock()
	if b.sealed.Load() {
		return nil, nil, 0, 0, fmt.Errorf("blockstore: block %v sealed for migration: %w",
			b.ID, core.ErrStaleEpoch)
	}
	res, err = fn()
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if p := b.chain.Load(); p != nil {
		chain = *p
	}
	seq = b.replSeq
	gen = b.replGen
	b.replSeq++
	return res, chain, seq, gen, nil
}

// ApplyInOrder blocks until it is seq's turn at this replica, applies
// fn, and releases the next sequence number. A mutation from a
// different chain generation than the replica's current one — or any
// mutation once the block is sealed — returns ErrStaleEpoch
// immediately (or as soon as a repair bumps the generation mid-wait):
// its sender is propagating along a chain that no longer exists, and
// must refresh.
func (b *Block) ApplyInOrder(seq, gen uint64, fn func() ([][]byte, error)) ([][]byte, error) {
	b.replMu.Lock()
	if b.applyCond == nil {
		b.applyCond = sync.NewCond(&b.replMu)
	}
	for b.applySeq != seq && b.replGen == gen && !b.sealed.Load() {
		b.applyCond.Wait()
	}
	if b.replGen != gen || b.sealed.Load() {
		b.replMu.Unlock()
		return nil, fmt.Errorf("blockstore: block %v: chain generation %d superseded by %d: %w",
			b.ID, gen, b.replGen, core.ErrStaleEpoch)
	}
	res, err := fn()
	b.applySeq++
	b.applyCond.Broadcast()
	b.replMu.Unlock()
	return res, err
}

// blockMap is the value type behind the store's copy-on-write pointer.
type blockMap = map[core.BlockID]*Block

// Store is the set of blocks hosted by one memory server.
type Store struct {
	high, low float64
	onSignal  Signal

	// blocks is a copy-on-write map: block resolution — the per-op
	// lookup on the data plane — is a single atomic load with no lock,
	// while Create/Delete (control-plane rare) clone the map under
	// writeMu and publish the copy. Readers may briefly see a block
	// that was just deleted; that is indistinguishable from the op
	// racing ahead of the delete, which the epoch protocol already
	// handles.
	blocks  atomic.Pointer[blockMap]
	writeMu sync.Mutex

	ops atomic.Int64

	// heatNow is the current heat clock value (UnixNano), refreshed by
	// the tiering worker at each scan. The data path stamps block
	// last-access times from it with a single atomic load — no clock
	// syscall per op. Coarse (scan-period granularity) is fine: the
	// policy's windows are orders of magnitude longer.
	heatNow atomic.Int64

	// telemetry (nil until Instrument; the data path stays alloc-free
	// and lock-free either way).
	created *obs.Counter
	deleted *obs.Counter
}

// SetHeatNow refreshes the heat clock (UnixNano). Called by the
// tiering worker once per scan, and at block creation.
func (s *Store) SetHeatNow(nanos int64) { s.heatNow.Store(nanos) }

// HeatNow returns the current heat clock value.
func (s *Store) HeatNow() int64 { return s.heatNow.Load() }

// ResidentBytes sums the payload bytes of blocks currently resident in
// memory (tiered blocks count zero — their contents live in the
// persist tier).
func (s *Store) ResidentBytes() int64 {
	var total int64
	for _, b := range s.snapshotMap() {
		if b.TierState() != TierTiered {
			total += int64(b.Partition.Bytes())
		}
	}
	return total
}

// TieredBlocks counts blocks currently demoted to the persist tier.
func (s *Store) TieredBlocks() int {
	n := 0
	for _, b := range s.snapshotMap() {
		if b.TierState() == TierTiered {
			n++
		}
	}
	return n
}

// NewStore creates an empty store with the given thresholds. onSignal
// may be nil (signals dropped).
func NewStore(high, low float64, onSignal Signal) *Store {
	s := &Store{
		high:     high,
		low:      low,
		onSignal: onSignal,
	}
	m := make(blockMap)
	s.blocks.Store(&m)
	return s
}

// snapshotMap returns the current published block map. Callers must
// treat it as immutable.
func (s *Store) snapshotMap() blockMap { return *s.blocks.Load() }

// Create installs a partition in a new block.
func (s *Store) Create(b *Block) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	old := s.snapshotMap()
	if _, exists := old[b.ID]; exists {
		return fmt.Errorf("blockstore: block %v: %w", b.ID, core.ErrExists)
	}
	next := make(blockMap, len(old)+1)
	for id, blk := range old {
		next[id] = blk
	}
	next[b.ID] = b
	s.blocks.Store(&next)
	if s.created != nil && obs.On() {
		s.created.Inc()
	}
	return nil
}

// Delete removes a block.
func (s *Store) Delete(id core.BlockID) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	old := s.snapshotMap()
	if _, exists := old[id]; !exists {
		return fmt.Errorf("blockstore: block %v: %w", id, core.ErrNotFound)
	}
	next := make(blockMap, len(old))
	for bid, blk := range old {
		if bid != id {
			next[bid] = blk
		}
	}
	s.blocks.Store(&next)
	if s.deleted != nil && obs.On() {
		s.deleted.Inc()
	}
	return nil
}

// Get returns the block, or ErrStaleEpoch when unknown — an unknown
// block ID means the client is operating on reclaimed or moved state
// and must refresh its partition map. Lock-free.
func (s *Store) Get(id core.BlockID) (*Block, error) {
	if b, ok := s.snapshotMap()[id]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("blockstore: block %v unknown: %w", id, core.ErrStaleEpoch)
}

// GetMany resolves a set of block IDs against one consistent snapshot
// of the block map — the batch path's lookup. The returned map holds
// only the blocks that exist; absent IDs mean the client's partition
// map is stale (same contract as Get).
func (s *Store) GetMany(ids []core.BlockID) map[core.BlockID]*Block {
	m := s.snapshotMap()
	out := make(map[core.BlockID]*Block, len(ids))
	for _, id := range ids {
		if b, ok := m[id]; ok {
			out[id] = b
		}
	}
	return out
}

// CountOps adds n to the applied-op counter for ops executed outside
// Apply/ApplyOn — the zero-copy view path, which reads partition
// memory directly.
func (s *Store) CountOps(n int64) { s.ops.Add(n) }

// Apply executes a data-plane op against a block, re-evaluating
// thresholds after mutations.
func (s *Store) Apply(id core.BlockID, op core.OpType, args [][]byte) ([][]byte, error) {
	b, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	return s.ApplyOn(b, op, args, true)
}

// ApplyOn executes an op against an already-resolved block. checkNow
// controls whether repartition thresholds are re-evaluated inline after
// a mutation; batch execution passes false and calls CheckThresholds
// once per mutated block after the whole batch applies, so a 64-op
// batch costs one threshold evaluation instead of 64.
func (s *Store) ApplyOn(b *Block, op core.OpType, args [][]byte, checkNow bool) ([][]byte, error) {
	res, err := b.Partition.Apply(op, args)
	s.ops.Add(1)
	if checkNow && op.IsMutation() {
		s.checkThresholds(b)
	}
	return res, err
}

// CheckThresholds re-evaluates a block against the repartition
// thresholds, emitting the overload/underload signal on a crossing.
// Deferred-check callers (ApplyOn with checkNow=false) must invoke it
// after their mutations land.
func (s *Store) CheckThresholds(b *Block) { s.checkThresholds(b) }

// checkThresholds emits at most one signal per threshold crossing.
func (s *Store) checkThresholds(b *Block) {
	if s.onSignal == nil {
		return
	}
	usage := b.Partition.Bytes()
	capacity := b.Partition.Capacity()
	if capacity <= 0 {
		return
	}
	frac := float64(usage) / float64(capacity)
	if frac > s.low {
		b.armedUnder.Store(true)
	}
	switch {
	case frac >= s.high:
		if b.signaled.CompareAndSwap(0, 1) || b.signaled.CompareAndSwap(-1, 1) {
			s.onSignal(b.Path, b.ID, true)
		}
	case frac <= s.low && b.armedUnder.Load():
		if drainedQueue(b) || b.Partition.Type() != core.DSQueue {
			if b.signaled.CompareAndSwap(0, -1) || b.signaled.CompareAndSwap(1, -1) {
				s.onSignal(b.Path, b.ID, false)
			}
		}
	default:
		b.signaled.Store(0)
	}
}

// drainedQueue reports whether b is a fully consumed, sealed queue
// segment — the only queue state eligible for reclamation.
func drainedQueue(b *Block) bool {
	q, ok := b.Partition.(*ds.Queue)
	return ok && q.Drained()
}

// ResetSignal clears the de-duplication state after the controller
// finishes (or declines) a scaling action, re-arming future signals.
func (s *Store) ResetSignal(id core.BlockID) {
	if b, err := s.Get(id); err == nil {
		b.signaled.Store(0)
	}
}

// Instrument registers the store's metrics with a registry: lifetime
// block create/delete counters plus live gauges for block count, used
// and capacity bytes (utilization is their ratio), and applied ops.
// The gauges read store state only at scrape time, so the data path
// pays nothing for them.
func (s *Store) Instrument(r *obs.Registry) {
	s.created = r.Counter("jiffy_store_blocks_created_total",
		"blocks installed into this store over its lifetime")
	s.deleted = r.Counter("jiffy_store_blocks_deleted_total",
		"blocks removed from this store over its lifetime")
	r.GaugeFunc("jiffy_store_blocks", "blocks currently hosted", func() int64 {
		return int64(len(s.snapshotMap()))
	})
	r.GaugeFunc("jiffy_store_used_bytes", "bytes stored across hosted blocks", func() int64 {
		_, used, _ := s.Stats()
		return int64(used)
	})
	r.GaugeFunc("jiffy_store_capacity_bytes", "capacity across hosted blocks", func() int64 {
		var capacity int64
		for _, b := range s.snapshotMap() {
			capacity += int64(b.Partition.Capacity())
		}
		return capacity
	})
	r.GaugeFunc("jiffy_store_ops_total", "data-plane operations applied", func() int64 {
		return s.ops.Load()
	})
}

// List returns a snapshot of the hosted blocks.
func (s *Store) List() []*Block {
	m := s.snapshotMap()
	out := make([]*Block, 0, len(m))
	for _, b := range m {
		out = append(out, b)
	}
	return out
}

// Stats summarizes the store.
func (s *Store) Stats() (blocks int, usedBytes int, ops int64) {
	m := s.snapshotMap()
	for _, b := range m {
		usedBytes += b.Partition.Bytes()
	}
	return len(m), usedBytes, s.ops.Load()
}
