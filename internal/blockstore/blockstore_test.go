package blockstore

import (
	"errors"
	"sync"
	"testing"

	"jiffy/internal/core"
	"jiffy/internal/ds"
)

type signalRecorder struct {
	mu      sync.Mutex
	signals []struct {
		block core.BlockID
		over  bool
	}
}

func (r *signalRecorder) fn(path core.Path, block core.BlockID, over bool) {
	r.mu.Lock()
	r.signals = append(r.signals, struct {
		block core.BlockID
		over  bool
	}{block, over})
	r.mu.Unlock()
}

func (r *signalRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.signals)
}

func (r *signalRecorder) last() (core.BlockID, bool, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.signals) == 0 {
		return 0, false, false
	}
	s := r.signals[len(r.signals)-1]
	return s.block, s.over, true
}

func newKVBlock(id core.BlockID, capacity int) *Block {
	return &Block{
		ID:        id,
		Path:      core.MustPath("job", "T1"),
		Partition: ds.NewKV(capacity, 64, []ds.SlotRange{{Lo: 0, Hi: 63}}),
	}
}

func TestCreateGetDelete(t *testing.T) {
	s := NewStore(0.95, 0.05, nil)
	b := newKVBlock(1, 1024)
	if err := s.Create(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(b); !errors.Is(err, core.ErrExists) {
		t.Errorf("duplicate create = %v", err)
	}
	got, err := s.Get(1)
	if err != nil || got.ID != 1 {
		t.Errorf("Get = %v, %v", got, err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
	if _, err := s.Get(1); !errors.Is(err, core.ErrStaleEpoch) {
		t.Errorf("Get missing = %v, want ErrStaleEpoch", err)
	}
}

func TestApplyRoutesToPartition(t *testing.T) {
	s := NewStore(0.95, 0.05, nil)
	s.Create(newKVBlock(1, 1024))
	if _, err := s.Apply(1, core.OpPut, [][]byte{[]byte("k"), []byte("v")}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Apply(1, core.OpGet, [][]byte{[]byte("k")})
	if err != nil || string(res[0]) != "v" {
		t.Errorf("get = %v, %v", res, err)
	}
	if _, err := s.Apply(99, core.OpGet, [][]byte{[]byte("k")}); !errors.Is(err, core.ErrStaleEpoch) {
		t.Errorf("unknown block = %v", err)
	}
}

func TestOverloadSignalOnce(t *testing.T) {
	rec := &signalRecorder{}
	s := NewStore(0.5, 0.05, rec.fn)
	s.Create(newKVBlock(1, 100))
	// Push usage past 50%: key "a"(1) + 60-byte value = 61 bytes.
	if _, err := s.Apply(1, core.OpPut, [][]byte{[]byte("a"), make([]byte, 60)}); err != nil {
		t.Fatal(err)
	}
	if rec.count() != 1 {
		t.Fatalf("signals = %d, want 1", rec.count())
	}
	if id, over, _ := rec.last(); id != 1 || !over {
		t.Errorf("signal = block %v over=%v", id, over)
	}
	// Further mutations above threshold do not re-signal.
	s.Apply(1, core.OpPut, [][]byte{[]byte("a"), make([]byte, 61)})
	if rec.count() != 1 {
		t.Errorf("re-signaled: %d", rec.count())
	}
}

func TestUnderloadSignalRequiresArming(t *testing.T) {
	rec := &signalRecorder{}
	s := NewStore(0.9, 0.2, rec.fn)
	s.Create(newKVBlock(1, 100))
	// A small write below the low threshold on a fresh block: no signal.
	s.Apply(1, core.OpPut, [][]byte{[]byte("a"), make([]byte, 5)})
	if rec.count() != 0 {
		t.Fatalf("fresh block signaled underload: %d", rec.count())
	}
	// Go above low (arming), then drop back below: underload fires once.
	s.Apply(1, core.OpPut, [][]byte{[]byte("b"), make([]byte, 40)})
	s.Apply(1, core.OpDelete, [][]byte{[]byte("b")})
	if rec.count() != 1 {
		t.Fatalf("signals = %d, want 1", rec.count())
	}
	if _, over, _ := rec.last(); over {
		t.Error("expected underload signal")
	}
}

func TestQueueUnderloadOnlyWhenDrained(t *testing.T) {
	rec := &signalRecorder{}
	s := NewStore(0.9, 0.3, rec.fn)
	q := ds.NewQueue(100)
	s.Create(&Block{ID: 2, Path: core.MustPath("j", "T"), Partition: q})
	s.Apply(2, core.OpEnqueue, [][]byte{make([]byte, 40)}) // arm
	s.Apply(2, core.OpDequeue, nil)                        // below low, but not sealed
	if rec.count() != 0 {
		t.Fatalf("unsealed queue signaled underload")
	}
	q.SetNext(core.BlockInfo{ID: 3, Server: "s"})
	s.Apply(2, core.OpEnqueue, [][]byte{[]byte("x")}) // redirect error, still evaluates
	if rec.count() != 1 {
		t.Errorf("drained queue signals = %d, want 1", rec.count())
	}
}

func TestResetSignalRearms(t *testing.T) {
	rec := &signalRecorder{}
	s := NewStore(0.5, 0.05, rec.fn)
	s.Create(newKVBlock(1, 100))
	s.Apply(1, core.OpPut, [][]byte{[]byte("a"), make([]byte, 60)})
	if rec.count() != 1 {
		t.Fatal("no initial signal")
	}
	s.ResetSignal(1)
	s.Apply(1, core.OpPut, [][]byte{[]byte("a"), make([]byte, 70)})
	if rec.count() != 2 {
		t.Errorf("signals after reset = %d, want 2", rec.count())
	}
}

func TestReadsDoNotSignal(t *testing.T) {
	rec := &signalRecorder{}
	s := NewStore(0.5, 0.05, rec.fn)
	b := newKVBlock(1, 100)
	s.Create(b)
	// Preload above threshold directly through the partition (bypassing
	// Apply, as a restore would).
	b.Partition.(*ds.KV).Put("a", make([]byte, 60))
	s.Apply(1, core.OpGet, [][]byte{[]byte("a")})
	if rec.count() != 0 {
		t.Errorf("read triggered %d signals", rec.count())
	}
}

func TestListAndStats(t *testing.T) {
	s := NewStore(0.95, 0.05, nil)
	s.Create(newKVBlock(1, 1024))
	s.Create(newKVBlock(2, 1024))
	s.Apply(1, core.OpPut, [][]byte{[]byte("k"), []byte("0123456789")})
	if got := len(s.List()); got != 2 {
		t.Errorf("List = %d blocks", got)
	}
	blocks, used, ops := s.Stats()
	if blocks != 2 || used != 11 || ops != 1 {
		t.Errorf("stats = %d blocks, %d bytes, %d ops", blocks, used, ops)
	}
}

func TestConcurrentApply(t *testing.T) {
	s := NewStore(0.95, 0.05, nil)
	s.Create(newKVBlock(1, core.MB))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := []byte{byte('a' + g), byte(i), byte(i >> 8)}
				if _, err := s.Apply(1, core.OpPut, [][]byte{key, []byte("v")}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	_, _, ops := s.Stats()
	if ops != 4000 {
		t.Errorf("ops = %d, want 4000", ops)
	}
}
