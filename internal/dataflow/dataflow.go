// Package dataflow implements the Dryad-style dataflow and StreamScope
// streaming models on Jiffy (§5.2 of the paper). Programmers describe
// an application as a DAG whose vertices are computations and whose
// edges are data channels; this runtime maps vertices to tasks
// (goroutines standing in for serverless functions) and channels to
// Jiffy FIFO queues. A vertex is scheduled when its input channels are
// ready — for queues, as soon as any item can arrive — and consumers
// use Jiffy's notification interface to detect new items instead of
// polling.
package dataflow

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/core"
)

// eofPrefix tags channel-termination markers. Each producer task
// enqueues one marker carrying its unique identity when it finishes.
// Consumers track the distinct marker identities they have seen and
// re-enqueue every marker they dequeue, so markers circulate to all
// consumer replicas; a consumer terminates once it has seen every
// producer's marker. FIFO ordering guarantees no real item can be
// stranded behind the markers.
const eofPrefix = "\x00jiffy-dataflow-eof:"

// ChannelKind selects a DAG edge's transport (§5.2: "channels can be
// files, shared memory FIFO queues, etc.").
type ChannelKind int

const (
	// QueueChannel streams items through a Jiffy FIFO queue; consumers
	// start immediately and block on notifications.
	QueueChannel ChannelKind = iota
	// FileChannel materializes items into a Jiffy file; consumers are
	// gated until every producer has finished ("a file channel is
	// ready if all its data items have been written").
	FileChannel
)

// Channel is one DAG edge.
type Channel struct {
	Name string
	Kind ChannelKind
	// Producers is the number of vertices writing to the channel
	// (consumers wait for this many EOF markers / completions).
	Producers int
}

// VertexFunc is a vertex computation: read inputs, write outputs.
type VertexFunc func(ctx context.Context, in []*Reader, out []*Writer) error

// Vertex is one DAG node.
type Vertex struct {
	Name string
	// Inputs / Outputs name the channels this vertex consumes and
	// produces.
	Inputs, Outputs []string
	// Fn is the computation.
	Fn VertexFunc
	// Replicas runs the vertex as N parallel tasks sharing its input
	// channels (work-stealing via queue semantics). Default 1.
	Replicas int
}

// Graph is a dataflow application.
type Graph struct {
	JobID    core.JobID
	Vertices []Vertex
	// FileChannels names the channels materialized as Jiffy files
	// instead of queues: their consumers are gated until every
	// producer finishes, Dryad's file-channel readiness rule. All
	// other channels are queues.
	FileChannels []string
	// QueueCapacityBlocks pre-provisions each channel (default 1).
	QueueCapacityBlocks int
	// LeaseRenewInterval paces the master's lease renewals.
	LeaseRenewInterval time.Duration
}

// Run executes the graph: creates the job hierarchy (one queue per
// channel), launches every vertex, and waits for completion. All
// vertices start immediately — queue channels are "ready as long as
// some vertex is writing" (§5.2) — and block on their input queues via
// notifications.
func Run(ctx context.Context, c *client.Client, g Graph) error {
	if g.JobID == "" || len(g.Vertices) == 0 {
		return fmt.Errorf("dataflow: empty graph")
	}
	if g.LeaseRenewInterval <= 0 {
		g.LeaseRenewInterval = 250 * time.Millisecond
	}
	channels, err := inferChannels(g)
	if err != nil {
		return err
	}

	if err := c.RegisterJob(ctx, g.JobID); err != nil {
		return fmt.Errorf("dataflow: register: %w", err)
	}
	defer c.DeregisterJob(ctx, g.JobID)

	root := core.Path(string(g.JobID))
	for name, ch := range channels {
		p := root.MustChild("ch-" + name)
		blocks := g.QueueCapacityBlocks
		if blocks <= 0 {
			blocks = 1
		}
		switch ch.Kind {
		case FileChannel:
			if _, _, err := c.CreatePrefix(ctx, p, nil, core.DSFile, blocks, 0); err != nil {
				return fmt.Errorf("dataflow: create file channel %q: %w", name, err)
			}
			// The companion done-queue gates consumers until every
			// producer has closed the channel.
			if _, _, err := c.CreatePrefix(ctx, root.MustChild("chdone-"+name), nil,
				core.DSQueue, 1, 0); err != nil {
				return fmt.Errorf("dataflow: create done channel %q: %w", name, err)
			}
		default:
			if _, _, err := c.CreatePrefix(ctx, p, nil, core.DSQueue, blocks, 0); err != nil {
				return fmt.Errorf("dataflow: create channel %q: %w", name, err)
			}
		}
	}
	renewer := c.StartRenewer(g.LeaseRenewInterval, root)
	defer renewer.Stop()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for _, v := range g.Vertices {
		replicas := v.Replicas
		if replicas <= 0 {
			replicas = 1
		}
		for r := 0; r < replicas; r++ {
			wg.Add(1)
			go func(v Vertex, replica int) {
				defer wg.Done()
				if err := runVertex(ctx, c, g, channels, v, replica); err != nil {
					fail(fmt.Errorf("dataflow: vertex %s[%d]: %w", v.Name, replica, err))
				}
			}(v, r)
		}
	}
	wg.Wait()
	return firstErr
}

// inferChannels validates the graph and computes per-channel producer
// counts (replicas included).
func inferChannels(g Graph) (map[string]*Channel, error) {
	channels := make(map[string]*Channel)
	for _, v := range g.Vertices {
		replicas := v.Replicas
		if replicas <= 0 {
			replicas = 1
		}
		for _, out := range v.Outputs {
			ch := channels[out]
			if ch == nil {
				ch = &Channel{Name: out}
				channels[out] = ch
			}
			ch.Producers += replicas
		}
	}
	for _, name := range g.FileChannels {
		ch, ok := channels[name]
		if !ok {
			return nil, fmt.Errorf("dataflow: file channel %q has no producer", name)
		}
		ch.Kind = FileChannel
	}
	for _, v := range g.Vertices {
		for _, in := range v.Inputs {
			if _, ok := channels[in]; !ok {
				return nil, fmt.Errorf("dataflow: vertex %s reads channel %q that no vertex writes",
					v.Name, in)
			}
		}
	}
	return channels, nil
}

func runVertex(ctx context.Context, c *client.Client, g Graph,
	channels map[string]*Channel, v Vertex, replica int) error {

	root := core.Path(string(g.JobID))
	readers := make([]*Reader, len(v.Inputs))
	for i, in := range v.Inputs {
		ch := channels[in]
		if ch.Kind == FileChannel {
			f, err := c.OpenFile(ctx, root.MustChild("ch-"+in))
			if err != nil {
				return err
			}
			dq, err := c.OpenQueue(ctx, root.MustChild("chdone-"+in))
			if err != nil {
				return err
			}
			readers[i] = newFileReader(f, dq, ch.Producers)
		} else {
			q, err := c.OpenQueue(ctx, root.MustChild("ch-"+in))
			if err != nil {
				return err
			}
			readers[i] = newReader(q, ch.Producers)
		}
	}
	writers := make([]*Writer, len(v.Outputs))
	for i, out := range v.Outputs {
		id := fmt.Sprintf("%s/%d", v.Name, replica)
		if channels[out].Kind == FileChannel {
			f, err := c.OpenFile(ctx, root.MustChild("ch-"+out))
			if err != nil {
				return err
			}
			dq, err := c.OpenQueue(ctx, root.MustChild("chdone-"+out))
			if err != nil {
				return err
			}
			writers[i] = &Writer{f: f, doneQ: dq, id: id}
		} else {
			q, err := c.OpenQueue(ctx, root.MustChild("ch-"+out))
			if err != nil {
				return err
			}
			writers[i] = &Writer{q: q, id: id}
		}
	}
	err := v.Fn(ctx, readers, writers)
	// Close all outputs whether or not the vertex succeeded so
	// downstream vertices terminate.
	for _, w := range writers {
		w.Close()
	}
	for _, r := range readers {
		r.close()
	}
	return err
}

// Writer produces items into a channel (queue- or file-backed).
type Writer struct {
	q      *client.Queue
	f      *client.File
	doneQ  *client.Queue
	id     string
	closed bool
	mu     sync.Mutex
}

// Write emits one item: an enqueue on queue channels, a framed record
// append on file channels.
func (w *Writer) Write(item []byte) error {
	if w.f != nil {
		return appendFramed(w.f, item)
	}
	return w.q.Enqueue(context.Background(

	// Close marks this producer finished: queue channels get the tagged
	// EOF marker; file channels get a completion token on the companion
	// done-queue (the file-channel readiness gate). Idempotent.
	), item)
}

func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f != nil {
		return w.doneQ.Enqueue(context.Background(), []byte(eofPrefix+w.id))
	}
	return w.q.Enqueue(context.Background(), []byte(eofPrefix+w.id))
}

// appendFramed writes a length-prefixed record; a zero length word is
// the end-of-chunk marker (chunks are zero-filled past the written
// region), so per-chunk parsing recovers the records exactly.
func appendFramed(f *client.File, item []byte) error {
	buf := make([]byte, 4+len(item))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(item))+1) // +1: never zero
	copy(buf[4:], item)
	_, err := f.AppendRecord(context.Background(), buf)
	return err
}

// readAllFramed parses every framed record in the file.
func readAllFramed(f *client.File) ([][]byte, error) {
	n, err := f.Chunks(context.Background())
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for ci := 0; ci < n; ci++ {
		data, err := f.ReadChunk(context.Background(), ci)
		if err != nil {
			return nil, err
		}
		off := 0
		for off+4 <= len(data) {
			l := int(binary.BigEndian.Uint32(data[off : off+4]))
			if l == 0 {
				break // zero word: end of this chunk's records
			}
			l-- // undo the +1 bias
			off += 4
			if off+l > len(data) {
				return nil, fmt.Errorf("dataflow: corrupt file channel record at %d", off)
			}
			out = append(out, data[off:off+l])
			off += l
		}
	}
	return out, nil
}

// Reader consumes items from a channel until every producer has
// closed it.
type Reader struct {
	q         *client.Queue
	listener  *client.Listener
	producers int
	seenEOF   map[string]bool
	done      bool

	// File-channel state: the reader gates on the done-queue, then
	// loads the materialized records.
	f      *client.File
	items  [][]byte
	idx    int
	loaded bool
}

func newReader(q *client.Queue, producers int) *Reader {
	r := &Reader{q: q, producers: producers, seenEOF: make(map[string]bool)}
	// Subscribe to enqueues so Read blocks without polling; fall back
	// to polling if the subscription fails.
	if l, err := q.Subscribe(context.Background(), core.OpEnqueue); err == nil {
		r.listener = l
	}
	return r
}

// newFileReader builds a reader over a file channel: doneQ carries the
// producers' completion tokens.
func newFileReader(f *client.File, doneQ *client.Queue, producers int) *Reader {
	r := newReader(doneQ, producers)
	r.f = f
	return r
}

// Read returns the next item. It returns io-style (nil, false, nil)
// when every producer has closed the channel.
func (r *Reader) Read(ctx context.Context) (item []byte, ok bool, err error) {
	if r.f != nil {
		return r.readFile(ctx)
	}
	if r.done {
		return nil, false, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		item, err := r.q.Dequeue(ctx)
		switch {
		case err == nil:
			if s := string(item); strings.HasPrefix(s, eofPrefix) {
				// Recirculate the marker for sibling replicas, then
				// check whether every producer has finished.
				alreadySeen := r.seenEOF[s]
				r.seenEOF[s] = true
				if err := r.q.Enqueue(ctx, item); err != nil {
					return nil, false, err
				}
				if len(r.seenEOF) >= r.producers {
					r.done = true
					return nil, false, nil
				}
				if alreadySeen {
					// Nothing new: yield so we don't spin on the
					// circulating markers.
					time.Sleep(time.Millisecond)
				}
				continue
			}
			return item, true, nil
		case errors.Is(err, core.ErrEmpty):
			// Wait for a notification (or a short timeout as fallback).
			if r.listener != nil {
				r.listener.Get(5 * time.Millisecond)
			} else {
				time.Sleep(time.Millisecond)
			}
		default:
			return nil, false, err
		}
	}
}

// readFile implements the file-channel read path: block until every
// producer has closed the channel (Dryad's readiness rule), then
// iterate the materialized records.
func (r *Reader) readFile(ctx context.Context) ([]byte, bool, error) {
	if !r.loaded {
		// The done-queue uses the same marker protocol as queue
		// channels; drain it through the queue path until done.
		for !r.done {
			if _, ok, err := r.readQueueToken(ctx); err != nil {
				return nil, false, err
			} else if ok {
				// Real items never travel on the done-queue.
				return nil, false, fmt.Errorf("dataflow: unexpected item on done channel")
			}
		}
		items, err := readAllFramed(r.f)
		if err != nil {
			return nil, false, err
		}
		r.items = items
		r.loaded = true
	}
	if r.idx >= len(r.items) {
		return nil, false, nil
	}
	item := r.items[r.idx]
	r.idx++
	return item, true, nil
}

// readQueueToken runs one step of the queue read loop (used by the
// file gate).
func (r *Reader) readQueueToken(ctx context.Context) ([]byte, bool, error) {
	saveF := r.f
	r.f = nil
	defer func() { r.f = saveF }()
	return r.Read(ctx)
}

func (r *Reader) close() {
	if r.listener != nil {
		r.listener.Close()
		r.listener = nil
	}
}
