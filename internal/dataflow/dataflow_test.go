package dataflow

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"jiffy"
	"jiffy/internal/client"
	"jiffy/internal/core"
)

func testClient(t *testing.T) *client.Client {
	t.Helper()
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestLinearPipeline runs source → transform → sink.
func TestLinearPipeline(t *testing.T) {
	c := testClient(t)
	var got []string
	var mu sync.Mutex
	err := Run(context.Background(), c, Graph{
		JobID: "pipeline",
		Vertices: []Vertex{
			{
				Name: "source", Outputs: []string{"raw"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					for i := 0; i < 20; i++ {
						if err := out[0].Write([]byte(fmt.Sprintf("item-%d", i))); err != nil {
							return err
						}
					}
					return nil
				},
			},
			{
				Name: "upper", Inputs: []string{"raw"}, Outputs: []string{"shouted"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					for {
						item, ok, err := in[0].Read(ctx)
						if err != nil || !ok {
							return err
						}
						if err := out[0].Write(bytes.ToUpper(item)); err != nil {
							return err
						}
					}
				},
			},
			{
				Name: "sink", Inputs: []string{"shouted"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					for {
						item, ok, err := in[0].Read(ctx)
						if err != nil || !ok {
							return err
						}
						mu.Lock()
						got = append(got, string(item))
						mu.Unlock()
					}
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("sink received %d items: %v", len(got), got)
	}
	// FIFO order preserved through the pipeline.
	for i, item := range got {
		if item != fmt.Sprintf("ITEM-%d", i) {
			t.Errorf("item %d = %q", i, item)
		}
	}
}

// TestFanOutFanIn checks multiple replicas draining a shared channel
// and merging into one output — the partition/count shape of the
// Fig. 13(a) streaming word-count.
func TestFanOutFanIn(t *testing.T) {
	c := testClient(t)
	var count int
	var mu sync.Mutex
	err := Run(context.Background(), c, Graph{
		JobID: "fan",
		Vertices: []Vertex{
			{
				Name: "gen", Outputs: []string{"work"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					for i := 0; i < 100; i++ {
						if err := out[0].Write([]byte{byte(i)}); err != nil {
							return err
						}
					}
					return nil
				},
			},
			{
				Name: "worker", Inputs: []string{"work"}, Outputs: []string{"done"},
				Replicas: 4,
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					for {
						item, ok, err := in[0].Read(ctx)
						if err != nil || !ok {
							return err
						}
						if err := out[0].Write(item); err != nil {
							return err
						}
					}
				},
			},
			{
				Name: "collect", Inputs: []string{"done"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					for {
						_, ok, err := in[0].Read(ctx)
						if err != nil || !ok {
							return err
						}
						mu.Lock()
						count++
						mu.Unlock()
					}
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("collected %d items, want 100", count)
	}
}

// Replicated consumers share EOF markers; verify a worker pool
// terminates even when one replica consumes several markers.
// (The EOF protocol counts markers per channel, produced once per
// producer replica; consumers re-enqueue none, so the total is fixed.)
func TestReplicatedConsumersTerminate(t *testing.T) {
	c := testClient(t)
	done := make(chan error, 1)
	go func() {
		done <- Run(context.Background(), c, Graph{
			JobID: "term",
			Vertices: []Vertex{
				{
					Name: "src", Outputs: []string{"q"}, Replicas: 3,
					Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
						return out[0].Write([]byte("x"))
					},
				},
				{
					Name: "snk", Inputs: []string{"q"},
					Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
						n := 0
						for {
							_, ok, err := in[0].Read(ctx)
							if err != nil {
								return err
							}
							if !ok {
								if n != 3 {
									return fmt.Errorf("got %d items, want 3", n)
								}
								return nil
							}
							n++
						}
					},
				},
			},
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("graph did not terminate")
	}
}

func TestVertexErrorPropagates(t *testing.T) {
	c := testClient(t)
	boom := errors.New("vertex failed")
	err := Run(context.Background(), c, Graph{
		JobID: "failflow",
		Vertices: []Vertex{
			{
				Name: "bad", Outputs: []string{"out"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					return boom
				},
			},
			{
				Name: "down", Inputs: []string{"out"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					for {
						_, ok, err := in[0].Read(ctx)
						if err != nil || !ok {
							return err
						}
					}
				},
			},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "vertex failed") {
		t.Errorf("err = %v", err)
	}
	// Downstream still terminated (EOF emitted on failure) — Run
	// returned rather than hanging, and resources were released.
	stats, _ := c.ControllerStats(context.Background())
	if stats.AllocatedBlocks != 0 {
		t.Errorf("blocks leaked: %d", stats.AllocatedBlocks)
	}
}

func TestUnboundChannelRejected(t *testing.T) {
	c := testClient(t)
	err := Run(context.Background(), c, Graph{
		JobID: "badgraph",
		Vertices: []Vertex{
			{
				Name: "reader", Inputs: []string{"nobody-writes-this"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					return nil
				},
			},
		},
	})
	if err == nil {
		t.Error("graph with unbound input accepted")
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	c := testClient(t)
	if err := Run(context.Background(), c, Graph{JobID: "empty"}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	c := testClient(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	err := Run(ctx, c, Graph{
		JobID: "cancelflow",
		Vertices: []Vertex{
			{
				Name: "idle-producer", Outputs: []string{"never"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					<-ctx.Done() // produce nothing, wait for cancel
					return ctx.Err()
				},
			},
			{
				Name: "blocked-consumer", Inputs: []string{"never"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					_, _, err := in[0].Read(ctx)
					return err
				},
			},
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestFileChannelGating verifies Dryad's file-channel readiness rule:
// the consumer sees nothing until every producer has closed the
// channel, then reads the fully materialized data.
func TestFileChannelGating(t *testing.T) {
	c := testClient(t)
	var order []string
	var mu sync.Mutex
	mark := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	err := Run(context.Background(), c, Graph{
		JobID:        "filechan",
		FileChannels: []string{"materialized"},
		Vertices: []Vertex{
			{
				Name: "producer", Outputs: []string{"materialized"}, Replicas: 2,
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					for i := 0; i < 10; i++ {
						if err := out[0].Write([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
							return err
						}
						time.Sleep(2 * time.Millisecond)
					}
					mark("producer-done")
					return nil
				},
			},
			{
				Name: "consumer", Inputs: []string{"materialized"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					count := 0
					for {
						_, ok, err := in[0].Read(ctx)
						if err != nil {
							return err
						}
						if !ok {
							break
						}
						if count == 0 {
							mark("consumer-first-read")
						}
						count++
					}
					if count != 20 {
						return fmt.Errorf("consumer saw %d records, want 20", count)
					}
					return nil
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both producers finished before the consumer's first record.
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[2] != "consumer-first-read" {
		t.Errorf("scheduling order = %v; consumer ran before producers finished", order)
	}
}

// TestMixedChannels: a graph combining a file channel (batch stage) and
// a queue channel (streaming stage).
func TestMixedChannels(t *testing.T) {
	c := testClient(t)
	var got []string
	var mu sync.Mutex
	err := Run(context.Background(), c, Graph{
		JobID:        "mixed",
		FileChannels: []string{"batch"},
		Vertices: []Vertex{
			{
				Name: "gen", Outputs: []string{"batch"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					for i := 0; i < 5; i++ {
						if err := out[0].Write([]byte(fmt.Sprintf("%d", i))); err != nil {
							return err
						}
					}
					return nil
				},
			},
			{
				Name: "transform", Inputs: []string{"batch"}, Outputs: []string{"stream"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					for {
						item, ok, err := in[0].Read(ctx)
						if err != nil || !ok {
							return err
						}
						if err := out[0].Write(append([]byte("x"), item...)); err != nil {
							return err
						}
					}
				},
			},
			{
				Name: "sink", Inputs: []string{"stream"},
				Fn: func(ctx context.Context, in []*Reader, out []*Writer) error {
					for {
						item, ok, err := in[0].Read(ctx)
						if err != nil || !ok {
							return err
						}
						mu.Lock()
						got = append(got, string(item))
						mu.Unlock()
					}
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != "x0" || got[4] != "x4" {
		t.Errorf("sink got %v", got)
	}
}
