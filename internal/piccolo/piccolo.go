// Package piccolo implements the Piccolo programming model on Jiffy
// (§5.3 of the paper): kernel functions express sequential application
// logic and share distributed mutable state through key-value tables;
// a centralized control function creates tables, launches kernel
// instances across tasks (goroutines standing in for serverless
// functions), coordinates iterations with barriers, and resolves
// concurrent updates to the same key with user-defined accumulators.
// Tables checkpoint by flushing their address prefixes to the
// persistent store, exactly as Piccolo checkpoints its tables.
package piccolo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/core"
)

// Accumulator merges a new contribution into a key's current value
// (Piccolo's user-defined accumulation). current is nil when the key
// is absent.
type Accumulator func(current, update []byte) []byte

// Sum is the classic summing accumulator over decimal-encoded floats.
// See AccumFloat64 helpers to build others.

// Table is a shared mutable KV table.
type Table struct {
	name string
	path core.Path
	kv   *client.KV
	acc  Accumulator

	// accMu serializes read-modify-write accumulations per key within
	// this process; kernels partition keys across instances, so
	// cross-process conflicts do not occur by construction (Piccolo's
	// ownership discipline), and in-process conflicts are resolved
	// here.
	accMu sync.Mutex
}

// Get reads a key (ErrNotFound if absent).
func (t *Table) Get(key string) ([]byte, error) {
	return t.kv.Get(context.Background(

	// Put overwrites a key.
	), key)
}

func (t *Table) Put(key string, value []byte) error {
	return t.kv.Put(context.Background(

	// Contains reports key presence.
	), key, value)
}

func (t *Table) Contains(key string) (bool, error) {
	return t.kv.Exists(context.Background(

	// Accumulate merges update into the key's value using the table's
	// accumulator.
	), key)
}

func (t *Table) Accumulate(key string, update []byte) error {
	if t.acc == nil {
		return fmt.Errorf("piccolo: table %q has no accumulator", t.name)
	}
	t.accMu.Lock()
	defer t.accMu.Unlock()
	current, err := t.kv.Get(context.Background(), key)
	if err != nil && !errors.Is(err, core.ErrNotFound) {
		return err
	}
	if errors.Is(err, core.ErrNotFound) {
		current = nil
	}
	return t.kv.Put(context.Background(), key, t.acc(current, update))
}

// Kernel is one kernel-function instance. Instances are numbered
// [0, Instances); applications partition their key space by instance.
type Kernel func(ctx context.Context, k *KernelCtx) error

// KernelCtx gives a kernel access to its tables and identity.
type KernelCtx struct {
	// Instance is this kernel's index; Instances the total count.
	Instance, Instances int
	// Iteration is the current control-loop iteration.
	Iteration int
	tables    map[string]*Table
}

// Table resolves a table by name.
func (k *KernelCtx) Table(name string) (*Table, error) {
	t, ok := k.tables[name]
	if !ok {
		return nil, fmt.Errorf("piccolo: unknown table %q: %w", name, core.ErrNotFound)
	}
	return t, nil
}

// TableSpec declares a shared table.
type TableSpec struct {
	Name string
	// InitialBlocks pre-provisions the table.
	InitialBlocks int
	// Accumulator resolves concurrent updates (may be nil for
	// put/get-only tables).
	Accumulator Accumulator
}

// Config describes a Piccolo program.
type Config struct {
	JobID  core.JobID
	Tables []TableSpec
	// Kernel is the per-instance computation; it runs Instances times
	// per iteration.
	Kernel    Kernel
	Instances int
	// Iterations is the number of barrier-separated rounds (default 1).
	Iterations int
	// LeaseRenewInterval paces the master's renewals.
	LeaseRenewInterval time.Duration
}

// Runtime is a running Piccolo program's control handle.
type Runtime struct {
	c      *client.Client
	cfg    Config
	tables map[string]*Table
	root   core.Path
}

// New sets up the job: registers it, creates one KV prefix per table.
func New(c *client.Client, cfg Config) (*Runtime, error) {
	if cfg.JobID == "" || cfg.Kernel == nil || cfg.Instances <= 0 || len(cfg.Tables) == 0 {
		return nil, fmt.Errorf("piccolo: incomplete config")
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	if cfg.LeaseRenewInterval <= 0 {
		cfg.LeaseRenewInterval = 250 * time.Millisecond
	}
	if err := c.RegisterJob(context.Background(), cfg.JobID); err != nil {
		return nil, fmt.Errorf("piccolo: register: %w", err)
	}
	rt := &Runtime{
		c:      c,
		cfg:    cfg,
		tables: make(map[string]*Table),
		root:   core.Path(string(cfg.JobID)),
	}
	for _, spec := range cfg.Tables {
		path := rt.root.MustChild("table-" + spec.Name)
		if _, _, err := c.CreatePrefix(context.Background(), path, nil, core.DSKV, spec.InitialBlocks, 0); err != nil {
			c.DeregisterJob(context.Background(), cfg.JobID)
			return nil, fmt.Errorf("piccolo: create table %q: %w", spec.Name, err)
		}
		kv, err := c.OpenKV(context.Background(), path)
		if err != nil {
			c.DeregisterJob(context.Background(), cfg.JobID)
			return nil, err
		}
		rt.tables[spec.Name] = &Table{
			name: spec.Name, path: path, kv: kv, acc: spec.Accumulator,
		}
	}
	return rt, nil
}

// Run executes the configured iterations: each iteration launches
// Instances kernel tasks and barriers on their completion, with the
// master renewing leases throughout (the paper: "The master
// periodically renews leases for Jiffy KV-stores").
func (rt *Runtime) Run(ctx context.Context) error {
	renewer := rt.c.StartRenewer(rt.cfg.LeaseRenewInterval, rt.root)
	defer renewer.Stop()
	for iter := 0; iter < rt.cfg.Iterations; iter++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for inst := 0; inst < rt.cfg.Instances; inst++ {
			wg.Add(1)
			go func(inst int) {
				defer wg.Done()
				kctx := &KernelCtx{
					Instance:  inst,
					Instances: rt.cfg.Instances,
					Iteration: iter,
					tables:    rt.tables,
				}
				if err := rt.cfg.Kernel(ctx, kctx); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("piccolo: kernel %d iter %d: %w", inst, iter, err)
					}
					mu.Unlock()
				}
			}(inst)
		}
		wg.Wait() // barrier between iterations
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}

// Table resolves a table from the control function.
func (rt *Runtime) Table(name string) (*Table, error) {
	t, ok := rt.tables[name]
	if !ok {
		return nil, fmt.Errorf("piccolo: unknown table %q: %w", name, core.ErrNotFound)
	}
	return t, nil
}

// Checkpoint flushes a table to the external store (Piccolo
// checkpointing via flushAddrPrefix).
func (rt *Runtime) Checkpoint(table, externalPath string) error {
	t, err := rt.Table(table)
	if err != nil {
		return err
	}
	_, err = rt.c.FlushPrefix(context.Background(), t.path, externalPath)
	return err
}

// Restore loads a table back from a checkpoint.
func (rt *Runtime) Restore(table, externalPath string) error {
	t, err := rt.Table(table)
	if err != nil {
		return err
	}
	if err := rt.c.LoadPrefix(context.Background(), t.path, externalPath); err != nil {
		return err
	}
	// Reopen the handle so it picks up the new partition map epoch.
	kv, err := rt.c.OpenKV(context.Background(), t.path)
	if err != nil {
		return err
	}
	t.kv = kv
	return nil
}

// Close releases the job's resources.
func (rt *Runtime) Close() error {
	return rt.c.DeregisterJob(context.Background(), rt.cfg.JobID)
}
