package piccolo

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"jiffy"
	"jiffy/internal/client"
	"jiffy/internal/core"
)

func testClient(t *testing.T) *client.Client {
	t.Helper()
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// sumAcc accumulates decimal integers.
func sumAcc(current, update []byte) []byte {
	cur := 0
	if current != nil {
		cur, _ = strconv.Atoi(string(current))
	}
	u, _ := strconv.Atoi(string(update))
	return []byte(strconv.Itoa(cur + u))
}

func TestSharedStateAcrossKernels(t *testing.T) {
	c := testClient(t)
	rt, err := New(c, Config{
		JobID:     "pic1",
		Tables:    []TableSpec{{Name: "state", Accumulator: sumAcc}},
		Instances: 4,
		Kernel: func(ctx context.Context, k *KernelCtx) error {
			tb, err := k.Table("state")
			if err != nil {
				return err
			}
			// Each instance owns its own key (Piccolo key partitioning)
			// and contributes to a shared counter via the accumulator.
			if err := tb.Put(fmt.Sprintf("own-%d", k.Instance), []byte("mine")); err != nil {
				return err
			}
			return tb.Accumulate("shared-counter", []byte("1"))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	tb, _ := rt.Table("state")
	v, err := tb.Get("shared-counter")
	if err != nil || string(v) != "4" {
		t.Errorf("shared counter = %q, %v", v, err)
	}
	for i := 0; i < 4; i++ {
		if v, err := tb.Get(fmt.Sprintf("own-%d", i)); err != nil || string(v) != "mine" {
			t.Errorf("own-%d = %q, %v", i, v, err)
		}
	}
}

func TestIterationsWithBarrier(t *testing.T) {
	c := testClient(t)
	rt, err := New(c, Config{
		JobID:      "pic-iter",
		Tables:     []TableSpec{{Name: "t", Accumulator: sumAcc}},
		Instances:  3,
		Iterations: 5,
		Kernel: func(ctx context.Context, k *KernelCtx) error {
			tb, _ := k.Table("t")
			// The barrier guarantee: at iteration i, all i×Instances
			// prior-round contributions are visible. Same-round
			// siblings may already have added up to Instances-1 more
			// (and this instance not yet), bounding the observation.
			if k.Instance == 0 && k.Iteration > 0 {
				v, err := tb.Get("rounds")
				if err != nil {
					return err
				}
				got, _ := strconv.Atoi(string(v))
				lo := k.Iteration * k.Instances
				hi := lo + k.Instances - 1
				if got < lo || got > hi {
					return fmt.Errorf("iteration %d sees %d contributions, want [%d,%d]",
						k.Iteration, got, lo, hi)
				}
			}
			return tb.Accumulate("rounds", []byte("1"))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	tb, _ := rt.Table("t")
	v, _ := tb.Get("rounds")
	if string(v) != "15" {
		t.Errorf("total = %q, want 15", v)
	}
}

func TestCheckpointRestore(t *testing.T) {
	c := testClient(t)
	rt, err := New(c, Config{
		JobID:     "pic-ckpt",
		Tables:    []TableSpec{{Name: "t", Accumulator: sumAcc}},
		Instances: 1,
		Kernel: func(ctx context.Context, k *KernelCtx) error {
			tb, _ := k.Table("t")
			return tb.Put("k", []byte("checkpointed"))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := rt.Checkpoint("t", "ckpt/pic"); err != nil {
		t.Fatal(err)
	}
	tb, _ := rt.Table("t")
	tb.Put("k", []byte("dirty"))
	if err := rt.Restore("t", "ckpt/pic"); err != nil {
		t.Fatal(err)
	}
	tb, _ = rt.Table("t")
	v, err := tb.Get("k")
	if err != nil || string(v) != "checkpointed" {
		t.Errorf("restored = %q, %v", v, err)
	}
}

func TestKernelErrorStopsRun(t *testing.T) {
	c := testClient(t)
	boom := errors.New("kernel panic-ish")
	iterations := 0
	rt, err := New(c, Config{
		JobID:      "pic-fail",
		Tables:     []TableSpec{{Name: "t"}},
		Instances:  2,
		Iterations: 5,
		Kernel: func(ctx context.Context, k *KernelCtx) error {
			if k.Instance == 0 {
				iterations = k.Iteration + 1
			}
			if k.Iteration == 1 {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	err = rt.Run(context.Background())
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if iterations != 2 {
		t.Errorf("ran %d iterations before stopping, want 2", iterations)
	}
}

func TestAccumulateWithoutAccumulator(t *testing.T) {
	c := testClient(t)
	rt, err := New(c, Config{
		JobID:     "pic-noacc",
		Tables:    []TableSpec{{Name: "t"}},
		Instances: 1,
		Kernel: func(ctx context.Context, k *KernelCtx) error {
			tb, _ := k.Table("t")
			return tb.Accumulate("k", []byte("x"))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Run(context.Background()); err == nil {
		t.Error("accumulate on table without accumulator should fail")
	}
}

func TestUnknownTable(t *testing.T) {
	c := testClient(t)
	rt, err := New(c, Config{
		JobID:     "pic-unknown",
		Tables:    []TableSpec{{Name: "t"}},
		Instances: 1,
		Kernel: func(ctx context.Context, k *KernelCtx) error {
			_, err := k.Table("nope")
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Run(context.Background()); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestInvalidConfigs(t *testing.T) {
	c := testClient(t)
	bad := []Config{
		{},
		{JobID: "x", Instances: 1, Kernel: func(context.Context, *KernelCtx) error { return nil }},
		{JobID: "x", Tables: []TableSpec{{Name: "t"}}, Kernel: func(context.Context, *KernelCtx) error { return nil }},
		{JobID: "x", Tables: []TableSpec{{Name: "t"}}, Instances: 1},
	}
	for i, cfg := range bad {
		if _, err := New(c, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
