package rpc

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// newEchoServer starts an echo-only RPC server on a fixed address so
// tests can kill it and bring a replacement up at the same endpoint.
func newEchoServer(t *testing.T, addr string) *Server {
	t.Helper()
	srv := NewServer(BytesHandler(func(_ context.Context, conn *ServerConn, method uint16, payload []byte) ([]byte, error) {
		if method == methodEcho {
			return payload, nil
		}
		return nil, fmt.Errorf("unknown method %d", method)
	}), nil)
	if _, err := srv.Listen(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// waitClosed blocks until the client's read pump has observed the peer
// going away, which is what Pool.Get keys its eviction on.
func waitClosed(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !c.IsClosed() {
		if time.Now().After(deadline) {
			t.Fatal("client never noticed the dead session")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolSessionLifecycle is the table-driven session-cache contract:
// a healthy session is reused across Gets, and a dead one — whether the
// client closed it or the server died under it — is evicted and
// replaced by a fresh dial instead of being handed back.
func TestPoolSessionLifecycle(t *testing.T) {
	cases := []struct {
		name string
		// disrupt breaks the first session (nil = leave it healthy) and
		// returns once the pool is expected to notice on the next Get.
		disrupt   func(t *testing.T, c *Client, srv *Server, addr string)
		wantDials int
		wantSame  bool
	}{
		{
			name:      "healthy session reused",
			disrupt:   nil,
			wantDials: 1,
			wantSame:  true,
		},
		{
			name: "client-closed session evicted",
			disrupt: func(t *testing.T, c *Client, srv *Server, addr string) {
				c.Close()
			},
			wantDials: 2,
		},
		{
			name: "server-killed session evicted",
			disrupt: func(t *testing.T, c *Client, srv *Server, addr string) {
				srv.Close()
				waitClosed(t, c)
				newEchoServer(t, addr) // replacement at the same endpoint
			},
			wantDials: 2,
		},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := fmt.Sprintf("mem://pool-lifecycle-%d", i)
			srv := newEchoServer(t, addr)
			dials := 0
			pool := NewPool(func(a string) (*Client, error) {
				dials++
				return Dial(a)
			})
			defer pool.Close()

			c1, err := pool.Get(addr)
			if err != nil {
				t.Fatal(err)
			}
			if tc.disrupt != nil {
				tc.disrupt(t, c1, srv, addr)
			}
			c2, err := pool.Get(addr)
			if err != nil {
				t.Fatal(err)
			}
			if dials != tc.wantDials {
				t.Errorf("dials = %d, want %d", dials, tc.wantDials)
			}
			if same := c1 == c2; same != tc.wantSame {
				t.Errorf("same session = %v, want %v", same, tc.wantSame)
			}
			if resp, err := c2.Call(methodEcho, []byte("alive")); err != nil || string(resp) != "alive" {
				t.Errorf("call on returned session = %q, %v", resp, err)
			}
		})
	}
}

// TestPoolPipelinedCallsShareOneSession issues many concurrent calls
// that all route through pool.Get: every caller must share the single
// cached session (one dial total) and, with writes going through the
// coalesced-flush path, every response must still land on its caller.
func TestPoolPipelinedCallsShareOneSession(t *testing.T) {
	addr := "mem://pool-pipelined"
	newEchoServer(t, addr)
	dials := 0
	pool := NewPool(func(a string) (*Client, error) {
		dials++
		return Dial(a)
	})
	defer pool.Close()

	const callers, perCaller = 32, 16
	var wg sync.WaitGroup
	errs := make(chan error, callers*perCaller)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				c, err := pool.Get(addr)
				if err != nil {
					errs <- err
					return
				}
				want := fmt.Sprintf("caller-%d-call-%d", g, i)
				resp, err := c.Call(methodEcho, []byte(want))
				if err != nil {
					errs <- err
					return
				}
				if string(resp) != want {
					errs <- fmt.Errorf("cross-wired response: got %q want %q", resp, want)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if dials != 1 {
		t.Errorf("dials = %d, want 1 (pipelined calls must share a session)", dials)
	}
}
