package rpc

import (
	"testing"

	"jiffy/internal/obs"
)

// TestTraceCachePairing covers the basic put/take contract: a pairing
// is returned exactly once, and unknown seqs yield the zero context.
func TestTraceCachePairing(t *testing.T) {
	var tc traceCache
	if got := tc.take(7); got.Valid() {
		t.Fatalf("empty cache returned a valid context: %+v", got)
	}
	tc.put(7, obs.SpanContext{TraceID: 1, SpanID: 2})
	if got := tc.take(7); got.TraceID != 1 || got.SpanID != 2 {
		t.Fatalf("take(7) = %+v, want {1 2}", got)
	}
	if got := tc.take(7); got.Valid() {
		t.Fatalf("second take(7) returned a valid context: %+v", got)
	}
}

// TestTraceCacheEviction exercises the clear-on-full bound: a peer
// spraying extensions without requests fills the cache, after which the
// stale pairings are dropped wholesale and new pairings keep working —
// the map never exceeds maxPendingTrace entries.
func TestTraceCacheEviction(t *testing.T) {
	var tc traceCache
	for seq := uint64(0); seq < maxPendingTrace; seq++ {
		tc.put(seq, obs.SpanContext{TraceID: seq + 1, SpanID: 1})
	}
	if len(tc.m) != maxPendingTrace {
		t.Fatalf("cache holds %d entries, want %d", len(tc.m), maxPendingTrace)
	}

	// The put that would exceed the bound clears the stale pairings and
	// installs only itself.
	tc.put(99999, obs.SpanContext{TraceID: 42, SpanID: 7})
	if len(tc.m) != 1 {
		t.Fatalf("cache holds %d entries after eviction, want 1", len(tc.m))
	}
	if got := tc.take(0); got.Valid() {
		t.Fatalf("evicted pairing survived: %+v", got)
	}
	if got := tc.take(99999); got.TraceID != 42 {
		t.Fatalf("post-eviction pairing lost: %+v", got)
	}

	// The cache keeps accepting pairings after an eviction cycle.
	tc.put(5, obs.SpanContext{TraceID: 9, SpanID: 9})
	if got := tc.take(5); got.TraceID != 9 {
		t.Fatalf("pairing after eviction lost: %+v", got)
	}
}
