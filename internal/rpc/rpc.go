// Package rpc provides the request/response layer on top of the framed
// wire protocol: multiplexed in-flight calls with sequence matching on
// the client, per-connection dispatch with bounded concurrency on the
// server, and server-push frames for the notification interface.
//
// This mirrors the role of the paper's optimized Thrift layer (§4.2.2):
// asynchronous framed IO multiplexing many sessions so requests across
// sessions proceed non-blockingly.
package rpc

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"

	"jiffy/internal/core"
	"jiffy/internal/wire"
)

// Marshal gob-encodes a control-plane message.
func Marshal(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("rpc: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal gob-decodes into v.
func Unmarshal(data []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("rpc: unmarshal: %w", err)
	}
	return nil
}

// Client is one logical connection to an RPC server. It is safe for
// concurrent use: calls from many goroutines are multiplexed over the
// single connection and matched to responses by sequence number.
type Client struct {
	conn *wire.Conn

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan *wire.Frame
	closed  bool

	// onPush, if set, receives push frames (subscription notifications).
	onPush func(subID uint64, payload []byte)

	readerDone chan struct{}
}

// DialFunc customizes how clients reach servers; the default uses
// wire.Dial (TCP or mem://).
type DialFunc func(addr string) (*Client, error)

// Dial connects to an RPC server at addr.
func Dial(addr string) (*Client, error) {
	nc, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewClient(wire.NewConn(nc)), nil
}

// NewClient builds a client over an established framed connection and
// starts its read pump.
func NewClient(conn *wire.Conn) *Client {
	c := &Client{
		conn:       conn,
		pending:    make(map[uint64]chan *wire.Frame),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// OnPush installs the handler invoked (from the read pump goroutine)
// for every push frame. Must be set before the first subscription is
// created.
func (c *Client) OnPush(fn func(subID uint64, payload []byte)) {
	c.mu.Lock()
	c.onPush = fn
	c.mu.Unlock()
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		f, err := c.conn.ReadFrame()
		if err != nil {
			c.failAll()
			return
		}
		switch f.Kind {
		case wire.KindResponse:
			c.mu.Lock()
			ch, ok := c.pending[f.Seq]
			if ok {
				delete(c.pending, f.Seq)
			}
			c.mu.Unlock()
			if ok {
				ch <- f
			}
		case wire.KindPush:
			c.mu.Lock()
			fn := c.onPush
			c.mu.Unlock()
			if fn != nil {
				fn(f.Seq, f.Payload)
			}
		}
	}
}

func (c *Client) failAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		close(ch)
	}
}

// Call performs a synchronous RPC: sends payload for method and waits
// for the matching response. The returned payload is the server's
// response body; a non-OK wire code becomes the corresponding sentinel
// error from internal/core.
func (c *Client) Call(method uint16, payload []byte) ([]byte, error) {
	return c.CallContext(context.Background(), method, payload)
}

// CallContext is Call with cancellation. A canceled context abandons
// the response (the pending entry is removed; a late response frame is
// dropped by the read pump).
func (c *Client) CallContext(ctx context.Context, method uint16, payload []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, core.ErrClosed
	}
	c.nextSeq++
	seq := c.nextSeq
	ch := make(chan *wire.Frame, 1)
	c.pending[seq] = ch
	c.mu.Unlock()

	err := c.conn.WriteFrame(&wire.Frame{
		Kind:    wire.KindRequest,
		Seq:     seq,
		Method:  method,
		Payload: payload,
	})
	if err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}

	select {
	case f, ok := <-ch:
		if !ok {
			return nil, core.ErrClosed
		}
		if f.Code != core.CodeOK {
			return f.Payload, core.ErrOf(f.Code, string(f.Payload))
		}
		return f.Payload, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// CallGob marshals req, performs the call and unmarshals into resp
// (which may be nil when no body is expected).
func (c *Client) CallGob(method uint16, req, resp interface{}) error {
	var payload []byte
	var err error
	if req != nil {
		payload, err = Marshal(req)
		if err != nil {
			return err
		}
	}
	out, err := c.Call(method, payload)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	return Unmarshal(out, resp)
}

// Close tears down the connection; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}
