// Package rpc provides the request/response layer on top of the framed
// wire protocol: multiplexed in-flight calls with sequence matching on
// the client, per-connection dispatch with bounded concurrency on the
// server, and server-push frames for the notification interface.
//
// This mirrors the role of the paper's optimized Thrift layer (§4.2.2):
// asynchronous framed IO multiplexing many sessions so requests across
// sessions proceed non-blockingly.
package rpc

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/core"
	"jiffy/internal/obs"
	"jiffy/internal/proto"
	"jiffy/internal/wire"
)

// SessionError reports that an RPC session died with calls in flight:
// the read pump hit a connection error (peer crash, reset, network
// partition) and every pending request was failed fast rather than
// left hanging. It unwraps to core.ErrClosed so existing errors.Is
// checks keep working; Cause carries the underlying transport error.
type SessionError struct {
	// Cause is the read-pump error that killed the session.
	Cause error
}

// Error implements error.
func (e *SessionError) Error() string {
	return fmt.Sprintf("rpc: session closed: %v", e.Cause)
}

// Unwrap maps the session failure onto the ErrClosed sentinel.
func (e *SessionError) Unwrap() error { return core.ErrClosed }

// Marshal gob-encodes a control-plane message.
func Marshal(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("rpc: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal gob-decodes into v.
func Unmarshal(data []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("rpc: unmarshal: %w", err)
	}
	return nil
}

// Client is one logical connection to an RPC server. It is safe for
// concurrent use: calls from many goroutines are multiplexed over the
// single connection and matched to responses by sequence number.
type Client struct {
	conn *wire.Conn

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan *wire.Frame
	closed  bool
	// sessionErr records why the session died; returned to callers whose
	// pending requests were failed by failAll.
	sessionErr error

	// timeout bounds every Call without an explicit context deadline;
	// zero disables the bound. clk drives the timeout timer (virtual in
	// simulations).
	timeout time.Duration
	clk     clock.Clock

	// onPush, if set, receives push frames (subscription notifications).
	onPush func(subID uint64, payload []byte)

	// instr carries the optional telemetry attachment (per-method
	// metrics, tracer, peer label). Atomic so instrumentation can be
	// installed by dial wrappers without racing in-flight calls.
	instr atomic.Pointer[instrumentation]

	readerDone chan struct{}
}

// instrumentation bundles a session's telemetry sinks.
type instrumentation struct {
	metrics *obs.RPCMetrics
	tracer  *obs.Tracer
	peer    string
}

// DialFunc customizes how clients reach servers; the default uses
// wire.Dial (TCP or mem://).
type DialFunc func(addr string) (*Client, error)

// Dial connects to an RPC server at addr.
func Dial(addr string) (*Client, error) {
	nc, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewClient(wire.NewConn(nc)), nil
}

// NewClient builds a client over an established framed connection and
// starts its read pump.
func NewClient(conn *wire.Conn) *Client {
	c := &Client{
		conn:       conn,
		pending:    make(map[uint64]chan *wire.Frame),
		clk:        clock.Real{},
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// SetTimeout installs the default per-call deadline; zero disables it.
// Calls already in flight are unaffected.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// SetClock overrides the timeout timer source (tests and simulations
// use a virtual clock).
func (c *Client) SetClock(clk clock.Clock) {
	c.mu.Lock()
	c.clk = clk
	c.mu.Unlock()
}

// IsClosed reports whether the session has terminated (read pump gone).
func (c *Client) IsClosed() bool {
	select {
	case <-c.readerDone:
		return true
	default:
		return false
	}
}

// Done is closed when the session terminates; connection caches watch
// it to evict dead sessions.
func (c *Client) Done() <-chan struct{} { return c.readerDone }

// SetInstrumentation attaches per-method metrics and a tracer to the
// session; peer labels outbound span events (usually the dialed
// address). Any argument may be nil.
func (c *Client) SetInstrumentation(m *obs.RPCMetrics, tr *obs.Tracer, peer string) {
	c.instr.Store(&instrumentation{metrics: m, tracer: tr, peer: peer})
}

// WithInstrumentation wraps a dial function so every session it
// produces reports into m and tr (either may be nil).
func WithInstrumentation(dial func(addr string) (*Client, error), m *obs.RPCMetrics, tr *obs.Tracer) func(addr string) (*Client, error) {
	if dial == nil {
		dial = Dial
	}
	if m == nil && tr == nil {
		return dial
	}
	return func(addr string) (*Client, error) {
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		c.SetInstrumentation(m, tr, addr)
		return c, nil
	}
}

// methodLabel names a method for spans and error text.
func methodLabel(method uint16) string {
	if n := proto.MethodName(method); n != "" {
		return n
	}
	return "0x" + strconv.FormatUint(uint64(method), 16)
}

// WithTimeout wraps a dial function so every client it produces carries
// the default per-call deadline d.
func WithTimeout(dial func(addr string) (*Client, error), d time.Duration) func(addr string) (*Client, error) {
	if dial == nil {
		dial = Dial
	}
	if d <= 0 {
		return dial
	}
	return func(addr string) (*Client, error) {
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		c.SetTimeout(d)
		return c, nil
	}
}

// OnPush installs the handler invoked (from the read pump goroutine)
// for every push frame. Must be set before the first subscription is
// created.
func (c *Client) OnPush(fn func(subID uint64, payload []byte)) {
	c.mu.Lock()
	c.onPush = fn
	c.mu.Unlock()
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		f, err := c.conn.ReadFrame()
		if err != nil {
			c.failAll(err)
			return
		}
		switch f.Kind {
		case wire.KindResponse:
			c.mu.Lock()
			ch, ok := c.pending[f.Seq]
			if ok {
				delete(c.pending, f.Seq)
			}
			c.mu.Unlock()
			if ok {
				ch <- f
			}
		case wire.KindPush:
			c.mu.Lock()
			fn := c.onPush
			c.mu.Unlock()
			if fn != nil {
				fn(f.Seq, f.Payload)
			}
		}
	}
}

// failAll marks the session dead and fails every pending call fast
// with a SessionError carrying cause — callers never hang on a peer
// that stopped responding.
func (c *Client) failAll(cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.sessionErr == nil {
		c.sessionErr = &SessionError{Cause: cause}
	}
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		close(ch)
	}
}

// Call performs a synchronous RPC: sends payload for method and waits
// for the matching response. The returned payload is the server's
// response body; a non-OK wire code becomes the corresponding sentinel
// error from internal/core.
func (c *Client) Call(method uint16, payload []byte) ([]byte, error) {
	return c.CallContext(context.Background(), method, payload)
}

// CallContext is Call with cancellation. A canceled context abandons
// the response (the pending entry is removed; a late response frame is
// dropped by the read pump) and the call fails with the context's
// error: context.Canceled, or ErrTimeout wrapping
// context.DeadlineExceeded when the ctx deadline expires. A ctx
// deadline takes precedence over the session's default timeout, which
// only arms when ctx carries no deadline of its own — a peer that
// stops reading still cannot hang the caller forever.
//
// When instrumentation is attached the call updates the per-method
// stats (requests, bytes, in-flight, latency histogram) and, when a
// tracer or an inbound span rides ctx, propagates the span to the
// peer via a trace-extension frame written in the same flush as the
// request.
func (c *Client) CallContext(ctx context.Context, method uint16, payload []byte) ([]byte, error) {
	return c.callInstrumented(ctx, method, payload, nil)
}

// CallVecContext is CallContext for requests whose body is assembled
// from scatter-gather segments (see ds.AppendRequestVec): the segments
// concatenate on the wire without an intermediate copy. They are fully
// consumed before the call blocks on the response, so the caller may
// reuse or release the underlying memory as soon as CallVecContext
// returns.
func (c *Client) CallVecContext(ctx context.Context, method uint16, vec [][]byte) ([]byte, error) {
	return c.callInstrumented(ctx, method, nil, vec)
}

func (c *Client) callInstrumented(ctx context.Context, method uint16, payload []byte, vec [][]byte) ([]byte, error) {
	in := c.instr.Load()
	var stats *obs.MethodStats
	var tracer *obs.Tracer
	var start time.Time
	if in != nil && obs.On() {
		tracer = in.tracer
		if in.metrics != nil {
			stats = in.metrics.Method(method)
			stats.Requests.Inc()
			n := len(payload)
			for _, seg := range vec {
				n += len(seg)
			}
			stats.BytesOut.Add(int64(n))
			stats.InFlight.Inc()
			start = time.Now()
		}
	}
	var span obs.Span
	if tracer != nil {
		ctx, span = tracer.Begin(ctx, "rpc:"+methodLabel(method), in.peer)
	}
	out, err := c.call(ctx, method, payload, vec)
	span.End(err)
	if stats != nil {
		stats.InFlight.Dec()
		stats.Latency.ObserveDuration(time.Since(start))
		stats.BytesIn.Add(int64(len(out)))
		if err != nil {
			stats.Errors.Inc()
		}
	}
	return out, err
}

// call is the uninstrumented request/response core. vec, when non-nil,
// carries scatter-gather body segments written after payload.
func (c *Client) call(ctx context.Context, method uint16, payload []byte, vec [][]byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		err := c.sessionErr
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return nil, core.ErrClosed
	}
	c.nextSeq++
	seq := c.nextSeq
	ch := make(chan *wire.Frame, 1)
	c.pending[seq] = ch
	timeout := c.timeout
	clk := c.clk
	c.mu.Unlock()

	req := &wire.Frame{
		Kind:       wire.KindRequest,
		Seq:        seq,
		Method:     method,
		Payload:    payload,
		PayloadVec: vec,
	}
	var err error
	if sc, ok := obs.SpanFromContext(ctx); ok && sc.Valid() {
		// The trace extension travels immediately before its request,
		// under the same seq and in the same flush. Old peers skip
		// non-request frames, so this stays wire-compatible.
		ext := &wire.Frame{Kind: wire.KindTraceExt, Seq: seq,
			Payload: wire.EncodeTraceExt(sc.TraceID, sc.SpanID)}
		err = c.conn.WriteFrames(ext, req)
	} else {
		err = c.conn.WriteFrame(req)
	}
	if err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}

	var timer <-chan time.Time
	if timeout > 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			timer = clk.After(timeout)
		}
	}

	select {
	case f, ok := <-ch:
		if !ok {
			c.mu.Lock()
			serr := c.sessionErr
			c.mu.Unlock()
			if serr != nil {
				return nil, serr
			}
			return nil, core.ErrClosed
		}
		if f.Code != core.CodeOK {
			return f.Payload, core.ErrOf(f.Code, string(f.Payload))
		}
		return f.Payload, nil
	case <-timer:
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: call %d timed out after %v: %w", method, timeout, core.ErrTimeout)
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		cerr := ctx.Err()
		if errors.Is(cerr, context.DeadlineExceeded) {
			// Map context deadlines onto the typed timeout error so the
			// retry/failover classification built around ErrTimeout keeps
			// working; errors.Is still sees context.DeadlineExceeded.
			return nil, fmt.Errorf("rpc: call %s: %w: %w", methodLabel(method), core.ErrTimeout, cerr)
		}
		return nil, fmt.Errorf("rpc: call %s: %w", methodLabel(method), cerr)
	}
}

// CallGob marshals req, performs the call and unmarshals into resp
// (which may be nil when no body is expected).
func (c *Client) CallGob(method uint16, req, resp interface{}) error {
	return c.CallGobCtx(context.Background(), method, req, resp)
}

// CallGobCtx is CallGob with cancellation and span propagation.
func (c *Client) CallGobCtx(ctx context.Context, method uint16, req, resp interface{}) error {
	var payload []byte
	var err error
	if req != nil {
		payload, err = Marshal(req)
		if err != nil {
			return err
		}
	}
	out, err := c.CallContext(ctx, method, payload)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	return Unmarshal(out, resp)
}

// Close tears down the connection; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}
