// Package rpc provides the request/response layer on top of the framed
// wire protocol: multiplexed in-flight calls with sequence matching on
// the client, per-connection dispatch with bounded concurrency on the
// server, and server-push frames for the notification interface.
//
// This mirrors the role of the paper's optimized Thrift layer (§4.2.2):
// asynchronous framed IO multiplexing many sessions so requests across
// sessions proceed non-blockingly.
package rpc

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/core"
	"jiffy/internal/obs"
	"jiffy/internal/proto"
	"jiffy/internal/wire"
)

// SessionError reports that an RPC session died with calls in flight:
// the read pump hit a connection error (peer crash, reset, network
// partition) and every pending request was failed fast rather than
// left hanging. It unwraps to core.ErrClosed so existing errors.Is
// checks keep working; Cause carries the underlying transport error.
type SessionError struct {
	// Cause is the read-pump error that killed the session.
	Cause error
}

// Error implements error.
func (e *SessionError) Error() string {
	return fmt.Sprintf("rpc: session closed: %v", e.Cause)
}

// Unwrap maps the session failure onto the ErrClosed sentinel.
func (e *SessionError) Unwrap() error { return core.ErrClosed }

// Marshal gob-encodes a control-plane message.
func Marshal(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("rpc: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal gob-decodes into v.
func Unmarshal(data []byte, v interface{}) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("rpc: unmarshal: %w", err)
	}
	return nil
}

// pendingShards divides the in-flight call table; must be a power of
// two. Sequence numbers are assigned atomically and map onto shards
// round-robin, so concurrent callers contend on a shard mutex held for
// one map operation instead of a client-wide lock held across seq
// assignment, registration, and completion.
const pendingShards = 16

// pendingShard is one stripe of the in-flight call table.
type pendingShard struct {
	mu sync.Mutex
	m  map[uint64]*waiter
	// pad out to a cache line so shards don't false-share.
	_ [40]byte
}

// callResult is what the read pump (or failAll) hands a waiter. At most
// one result is ever delivered per registration: the sender first
// removes the waiter from the pending table, so the 1-buffered channel
// never blocks and never carries a stale value across reuses.
type callResult struct {
	payload []byte
	code    core.ErrorCode
	// pooled marks payload as wire.GetBuf memory now owned by the
	// receiver (borrowed-call responses).
	pooled bool
	// err is the session failure injected by failAll; nil otherwise.
	err error
}

// waiter is the pooled per-call state: a reusable 1-buffered response
// channel plus a reusable timeout timer. Waiters recycle through
// waiterPool, so the steady-state cost of a call is zero allocations
// for channel, timer, and pending-table plumbing.
type waiter struct {
	ch chan callResult
	// borrow asks the read pump for a pooled payload copy instead of a
	// heap-owned one; set before registration, read under the shard lock.
	borrow bool
	// method labels watchdog timeout errors; set before registration.
	method uint16
	// expiry, when non-zero, is the watchdog tick at which this call
	// times out (coarse-deadline fast path). Written before registration,
	// read by the watchdog under the shard lock.
	expiry uint64
	// timer is the lazily created, reused per-call timeout timer (real
	// clock only; virtual clocks go through clock.After).
	timer *time.Timer
}

var waiterPool = sync.Pool{
	New: func() interface{} { return &waiter{ch: make(chan callResult, 1)} },
}

// Client is one logical session with an RPC server. It is safe for
// concurrent use: calls from many goroutines are multiplexed over the
// session's connections and matched to responses by sequence number.
// A session normally owns one connection; DialShards builds one that
// owns several (each with its own read pump and write mutex),
// partitioning the sequence space across them so concurrent callers
// stop contending on a single write lock and read pump. Calls remain
// synchronous request/response, so operations issued by one goroutine
// keep their program order regardless of which connection carries
// them; there is no cross-goroutine ordering either way.
type Client struct {
	conns []*wire.Conn

	nextSeq atomic.Uint64
	pending [pendingShards]pendingShard
	// closed flips once, before failAll sweeps the pending table; a
	// caller that registers and then observes closed un-registers itself
	// (or collects failAll's result), so no waiter is ever stranded.
	closed atomic.Bool
	// busyPoll makes callers spin briefly on response arrival before
	// parking in select — see SetBusyPoll.
	busyPoll atomic.Bool

	// tick counts watchdog sweeps; waiters on the coarse-deadline fast
	// path record the tick at which they expire instead of arming a
	// per-call timer. watchdogOnce starts the sweeper lazily the first
	// time a call qualifies, so clients that never take the fast path
	// never run the goroutine.
	tick         atomic.Uint64
	watchdogOnce sync.Once

	// downOnce closes readerDone exactly once — with a sharded session
	// several read pumps race to report the session's death.
	downOnce sync.Once

	mu sync.Mutex
	// sessionErr records why the session died; returned to callers whose
	// pending requests were failed by failAll. Guarded by mu.
	sessionErr error

	// timeout bounds every Call without an explicit context deadline;
	// zero disables the bound. clk drives the timeout timer (virtual in
	// simulations). Guarded by mu.
	timeout time.Duration
	clk     clock.Clock

	// onPush, if set, receives push frames (subscription notifications).
	onPush func(subID uint64, payload []byte)

	// instr carries the optional telemetry attachment (per-method
	// metrics, tracer, peer label). Atomic so instrumentation can be
	// installed by dial wrappers without racing in-flight calls.
	instr atomic.Pointer[instrumentation]

	readerDone chan struct{}
}

// instrumentation bundles a session's telemetry sinks.
type instrumentation struct {
	metrics *obs.RPCMetrics
	tracer  *obs.Tracer
	peer    string
}

// DialFunc customizes how clients reach servers; the default uses
// wire.Dial (TCP or mem://).
type DialFunc func(addr string) (*Client, error)

// Dial connects to an RPC server at addr.
func Dial(addr string) (*Client, error) {
	return DialShards(addr, 1)
}

// DialShards connects a sharded session to addr: n independent framed
// connections bound into one logical Client (n < 1 is treated as 1).
// See DialShardsNet for custom transports.
func DialShards(addr string, n int) (*Client, error) {
	return DialShardsNet(addr, n, wire.Dial)
}

// DialShardsNet is DialShards over a caller-supplied net-level dial
// (fault injectors, custom transports). Connections dialed before a
// failure are closed on the way out.
func DialShardsNet(addr string, n int, dialNet func(string) (net.Conn, error)) (*Client, error) {
	if n < 1 {
		n = 1
	}
	conns := make([]*wire.Conn, 0, n)
	for i := 0; i < n; i++ {
		nc, err := dialNet(addr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		conns = append(conns, wire.NewConn(nc))
	}
	return NewClientConns(conns), nil
}

// NewClient builds a client over an established framed connection and
// starts its read pump.
func NewClient(conn *wire.Conn) *Client {
	return NewClientConns([]*wire.Conn{conn})
}

// NewClientConns builds one logical session over conns and starts a
// read pump per connection. All pumps share the pending table and the
// push hook; the death of any connection fails the whole session.
func NewClientConns(conns []*wire.Conn) *Client {
	c := &Client{
		conns:      conns,
		clk:        clock.Real{},
		readerDone: make(chan struct{}),
	}
	for i := range c.pending {
		c.pending[i].m = make(map[uint64]*waiter)
	}
	for _, cn := range conns {
		go c.readLoop(cn)
	}
	return c
}

// SetBusyPoll enables busy-poll mode: callers spin briefly (yielding
// the processor between probes) on response arrival before parking in
// a channel select. For latency-critical deployments this shaves the
// park/unpark scheduling cost off single-op round trips at the price
// of CPU burned while spinning; leave it off for throughput-oriented
// or heavily oversubscribed workloads.
func (c *Client) SetBusyPoll(on bool) {
	c.busyPoll.Store(on)
}

// WithBusyPoll wraps a dial function so every client it produces has
// busy-poll mode enabled.
func WithBusyPoll(dial func(addr string) (*Client, error)) func(addr string) (*Client, error) {
	if dial == nil {
		dial = Dial
	}
	return func(addr string) (*Client, error) {
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		c.SetBusyPoll(true)
		return c, nil
	}
}

// SetTimeout installs the default per-call deadline; zero disables it.
// Calls already in flight are unaffected.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// SetClock overrides the timeout timer source (tests and simulations
// use a virtual clock).
func (c *Client) SetClock(clk clock.Clock) {
	c.mu.Lock()
	c.clk = clk
	c.mu.Unlock()
}

// IsClosed reports whether the session has terminated (read pump gone).
func (c *Client) IsClosed() bool {
	select {
	case <-c.readerDone:
		return true
	default:
		return false
	}
}

// Done is closed when the session terminates; connection caches watch
// it to evict dead sessions.
func (c *Client) Done() <-chan struct{} { return c.readerDone }

// SetInstrumentation attaches per-method metrics and a tracer to the
// session; peer labels outbound span events (usually the dialed
// address). Any argument may be nil.
func (c *Client) SetInstrumentation(m *obs.RPCMetrics, tr *obs.Tracer, peer string) {
	c.instr.Store(&instrumentation{metrics: m, tracer: tr, peer: peer})
}

// WithInstrumentation wraps a dial function so every session it
// produces reports into m and tr (either may be nil).
func WithInstrumentation(dial func(addr string) (*Client, error), m *obs.RPCMetrics, tr *obs.Tracer) func(addr string) (*Client, error) {
	if dial == nil {
		dial = Dial
	}
	if m == nil && tr == nil {
		return dial
	}
	return func(addr string) (*Client, error) {
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		c.SetInstrumentation(m, tr, addr)
		return c, nil
	}
}

// methodLabel names a method for spans and error text.
func methodLabel(method uint16) string {
	if n := proto.MethodName(method); n != "" {
		return n
	}
	return "0x" + strconv.FormatUint(uint64(method), 16)
}

// WithTimeout wraps a dial function so every client it produces carries
// the default per-call deadline d.
func WithTimeout(dial func(addr string) (*Client, error), d time.Duration) func(addr string) (*Client, error) {
	if dial == nil {
		dial = Dial
	}
	if d <= 0 {
		return dial
	}
	return func(addr string) (*Client, error) {
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		c.SetTimeout(d)
		return c, nil
	}
}

// OnPush installs the handler invoked (from the read pump goroutine)
// for every push frame. Must be set before the first subscription is
// created. The payload is only valid for the duration of the callback
// — it may alias connection-owned read storage reused by the next
// frame — so handlers must decode or copy before returning.
func (c *Client) OnPush(fn func(subID uint64, payload []byte)) {
	c.mu.Lock()
	c.onPush = fn
	c.mu.Unlock()
}

// shard returns the pending-table stripe owning seq.
func (c *Client) shard(seq uint64) *pendingShard {
	return &c.pending[seq&(pendingShards-1)]
}

func (c *Client) readLoop(cn *wire.Conn) {
	for {
		// Small frames decode into connection-owned storage; whatever
		// must outlive this iteration is copied below. Large frames come
		// back freshly allocated and transfer ownership as before.
		f, reused, err := cn.ReadFrameReused()
		if err != nil {
			c.failAll(err)
			return
		}
		switch f.Kind {
		case wire.KindResponse:
			sh := c.shard(f.Seq)
			sh.mu.Lock()
			w, ok := sh.m[f.Seq]
			if ok {
				delete(sh.m, f.Seq)
			}
			sh.mu.Unlock()
			if !ok {
				break // abandoned by timeout/cancel; drop the late response
			}
			r := callResult{code: f.Code}
			switch {
			case len(f.Payload) == 0:
			case !reused:
				r.payload = f.Payload
			case w.borrow:
				r.payload = append(wire.GetBuf(), f.Payload...)
				r.pooled = true
			default:
				r.payload = append([]byte(nil), f.Payload...)
			}
			// Delivery cannot block: the channel holds one slot and the
			// waiter was just removed from the table, making us the only
			// sender for this registration.
			w.ch <- r
		case wire.KindPush:
			c.mu.Lock()
			fn := c.onPush
			c.mu.Unlock()
			if fn != nil {
				fn(f.Seq, f.Payload)
			}
		}
	}
}

// failAll marks the session dead and fails every pending call fast
// with a SessionError carrying cause — callers never hang on a peer
// that stopped responding. The error is recorded before closed flips,
// so any caller that observes closed reads a non-nil cause. With a
// sharded session the first pump to die brings down the sibling
// connections too (the session is one unit of failure); their pumps
// then re-enter here and find the table already swept.
func (c *Client) failAll(cause error) {
	c.mu.Lock()
	if c.sessionErr == nil {
		c.sessionErr = &SessionError{Cause: cause}
	}
	serr := c.sessionErr
	c.mu.Unlock()
	c.closed.Store(true)
	for _, cn := range c.conns {
		cn.Close()
	}
	for i := range c.pending {
		sh := &c.pending[i]
		sh.mu.Lock()
		for seq, w := range sh.m {
			delete(sh.m, seq)
			w.ch <- callResult{err: serr}
		}
		sh.mu.Unlock()
	}
	c.downOnce.Do(func() { close(c.readerDone) })
}

// closureErr reports why the session is closed.
func (c *Client) closureErr() error {
	c.mu.Lock()
	err := c.sessionErr
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return core.ErrClosed
}

// Call performs a synchronous RPC: sends payload for method and waits
// for the matching response. The returned payload is the server's
// response body; a non-OK wire code becomes the corresponding sentinel
// error from internal/core.
func (c *Client) Call(method uint16, payload []byte) ([]byte, error) {
	return c.CallContext(context.Background(), method, payload)
}

// CallContext is Call with cancellation. A canceled context abandons
// the response (the pending entry is removed; a late response frame is
// dropped by the read pump) and the call fails with the context's
// error: context.Canceled, or ErrTimeout wrapping
// context.DeadlineExceeded when the ctx deadline expires. A ctx
// deadline takes precedence over the session's default timeout, which
// only arms when ctx carries no deadline of its own — a peer that
// stops reading still cannot hang the caller forever.
//
// When instrumentation is attached the call updates the per-method
// stats (requests, bytes, in-flight, latency histogram) and, when a
// tracer or an inbound span rides ctx, propagates the span to the
// peer via a trace-extension frame written in the same flush as the
// request.
func (c *Client) CallContext(ctx context.Context, method uint16, payload []byte) ([]byte, error) {
	out, _, err := c.callInstrumented(ctx, method, payload, nil, false)
	return out, err
}

// CallBorrowedContext is CallContext for callers prepared to receive
// the response in borrowed memory: when pooled is true the returned
// payload is backed by a wire.GetBuf buffer that the caller MUST
// return with wire.PutBuf once done with it — on error paths too,
// since some errors (redirects) carry meaningful payloads. Small
// responses travel alloc-free this way; large ones come back heap-owned
// with pooled false.
func (c *Client) CallBorrowedContext(ctx context.Context, method uint16, payload []byte) (out []byte, pooled bool, err error) {
	return c.callInstrumented(ctx, method, payload, nil, true)
}

// CallVecContext is CallContext for requests whose body is assembled
// from scatter-gather segments (see ds.AppendRequestVec): the segments
// concatenate on the wire without an intermediate copy. They are fully
// consumed before the call blocks on the response, so the caller may
// reuse or release the underlying memory as soon as CallVecContext
// returns.
func (c *Client) CallVecContext(ctx context.Context, method uint16, vec [][]byte) ([]byte, error) {
	out, _, err := c.callInstrumented(ctx, method, nil, vec, false)
	return out, err
}

func (c *Client) callInstrumented(ctx context.Context, method uint16, payload []byte, vec [][]byte, borrow bool) ([]byte, bool, error) {
	in := c.instr.Load()
	if in == nil || !obs.On() {
		// No telemetry attached (or globally disabled): skip straight to
		// the wire. This keeps the uninstrumented path free of method
		// label lookups, span plumbing, and stat loads.
		return c.call(ctx, method, payload, vec, borrow)
	}
	tracer := in.tracer
	var stats *obs.MethodStats
	var start time.Time
	if in.metrics != nil {
		stats = in.metrics.Method(method)
		stats.Requests.Inc()
		n := len(payload)
		for _, seg := range vec {
			n += len(seg)
		}
		stats.BytesOut.Add(int64(n))
		stats.InFlight.Inc()
		start = time.Now()
	}
	var span obs.Span
	if tracer != nil {
		ctx, span = tracer.Begin(ctx, "rpc:"+methodLabel(method), in.peer)
	}
	out, pooled, err := c.call(ctx, method, payload, vec, borrow)
	span.End(err)
	if stats != nil {
		stats.InFlight.Dec()
		stats.Latency.ObserveDuration(time.Since(start))
		stats.BytesIn.Add(int64(len(out)))
		if err != nil {
			stats.Errors.Inc()
		}
	}
	return out, pooled, err
}

// busyPollSpins bounds the pre-park spin in busy-poll mode. Each probe
// yields the processor, so on a loaded machine the spin degrades into a
// handful of scheduler passes rather than burned exclusive CPU.
const busyPollSpins = 128

// call is the uninstrumented request/response core. vec, when non-nil,
// carries scatter-gather body segments written after payload. borrow
// opts into pooled response memory (see CallBorrowedContext).
func (c *Client) call(ctx context.Context, method uint16, payload []byte, vec [][]byte, borrow bool) ([]byte, bool, error) {
	if c.closed.Load() {
		return nil, false, c.closureErr()
	}

	c.mu.Lock()
	timeout := c.timeout
	clk := c.clk
	c.mu.Unlock()

	w := waiterPool.Get().(*waiter)
	w.borrow = borrow
	w.method = method
	// Coarse-deadline fast path: a deadline-less context with the real
	// clock doesn't arm a per-call timer at all. The waiter records the
	// watchdog tick at which it expires and the caller parks in a bare
	// channel receive — no timer lock traffic, no multi-way select. The
	// price is timeout granularity of one sweep interval, which is why
	// short timeouts keep the precise timer.
	if timeout >= watchdogMinTimeout && ctx.Done() == nil {
		if _, real := clk.(clock.Real); real {
			c.watchdogOnce.Do(c.startWatchdog)
			w.expiry = c.tick.Load() + watchdogTicks(timeout)
		}
	}
	seq := c.nextSeq.Add(1)
	sh := c.shard(seq)
	sh.mu.Lock()
	sh.m[seq] = w
	sh.mu.Unlock()
	// Re-check after registering: failAll flips closed before sweeping,
	// so a session death racing this call either left our entry for the
	// sweep (collect its result below) or we remove it ourselves here.
	if c.closed.Load() {
		return nil, false, c.abandon(seq, w, nil, c.closureErr())
	}

	// Sharded sessions partition the sequence space across connections;
	// the response returns on the connection that carried the request.
	cn := c.conns[0]
	if len(c.conns) > 1 {
		cn = c.conns[seq%uint64(len(c.conns))]
	}

	var err error
	sc, traced := obs.SpanFromContext(ctx)
	if traced && sc.Valid() {
		// The trace extension travels immediately before its request,
		// under the same seq and in the same flush. Old peers skip
		// non-request frames, so this stays wire-compatible.
		if vec == nil && len(payload) <= wire.InlineFrameThreshold {
			buf := wire.GetBuf()
			ext := wire.Frame{Kind: wire.KindTraceExt, Seq: seq,
				Payload: wire.EncodeTraceExt(sc.TraceID, sc.SpanID)}
			req := wire.Frame{Kind: wire.KindRequest, Seq: seq, Method: method, Payload: payload}
			buf = wire.AppendFrame(buf, &ext)
			buf = wire.AppendFrame(buf, &req)
			err = cn.WriteBytes(buf)
			wire.PutBuf(buf)
		} else {
			ext := &wire.Frame{Kind: wire.KindTraceExt, Seq: seq,
				Payload: wire.EncodeTraceExt(sc.TraceID, sc.SpanID)}
			req := &wire.Frame{Kind: wire.KindRequest, Seq: seq, Method: method,
				Payload: payload, PayloadVec: vec}
			err = cn.WriteFrames(ext, req)
		}
	} else if vec == nil && len(payload) <= wire.InlineFrameThreshold {
		// Inline fast path: encode the whole frame into one pooled
		// buffer and hand the connection a single contiguous write. The
		// frame value stays on the stack; the group-commit flush treats
		// the write like any other convoy member.
		buf := wire.GetBuf()
		req := wire.Frame{Kind: wire.KindRequest, Seq: seq, Method: method, Payload: payload}
		buf = wire.AppendFrame(buf, &req)
		err = cn.WriteBytes(buf)
		wire.PutBuf(buf)
	} else {
		req := &wire.Frame{Kind: wire.KindRequest, Seq: seq, Method: method,
			Payload: payload, PayloadVec: vec}
		err = cn.WriteFrame(req)
	}
	if err != nil {
		return nil, false, c.abandon(seq, w, nil, err)
	}

	// Timeout timer: with the real clock the waiter's own timer is
	// reused across calls (time.After allocates a timer plus channel per
	// call); virtual clocks go through clock.After as before. Calls on
	// the coarse-deadline fast path already carry a watchdog expiry.
	var timerC <-chan time.Time
	var tm *time.Timer
	if timeout > 0 && w.expiry == 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			if _, real := clk.(clock.Real); real {
				if tm = w.timer; tm == nil {
					tm = time.NewTimer(timeout)
					w.timer = tm
				} else {
					tm.Reset(timeout)
				}
				timerC = tm.C
			} else {
				timerC = clk.After(timeout)
			}
		}
	}

	var r callResult
	received := false
	if c.busyPoll.Load() {
		for i := 0; i < busyPollSpins; i++ {
			select {
			case r = <-w.ch:
				received = true
			default:
				runtime.Gosched()
			}
			if received {
				break
			}
		}
	}
	if !received && w.expiry != 0 {
		// Bare receive: delivery comes from the read pump, failAll, or
		// the watchdog (as a callResult carrying ErrTimeout) — all of
		// which claim the pending entry first, so exactly one arrives.
		r = <-w.ch
		received = true
	}
	if !received {
		select {
		case r = <-w.ch:
		case <-timerC:
			tm = nil // fired and drained; nothing to stop
			return nil, false, c.abandon(seq, w, tm,
				fmt.Errorf("rpc: call %d timed out after %v: %w", method, timeout, core.ErrTimeout))
		case <-ctx.Done():
			cerr := ctx.Err()
			if errors.Is(cerr, context.DeadlineExceeded) {
				// Map context deadlines onto the typed timeout error so the
				// retry/failover classification built around ErrTimeout keeps
				// working; errors.Is still sees context.DeadlineExceeded.
				cerr = fmt.Errorf("rpc: call %s: %w: %w", methodLabel(method), core.ErrTimeout, cerr)
			} else {
				cerr = fmt.Errorf("rpc: call %s: %w", methodLabel(method), cerr)
			}
			return nil, false, c.abandon(seq, w, tm, cerr)
		}
	}
	stopTimer(tm)
	releaseWaiter(w)
	if r.err != nil {
		return nil, false, r.err
	}
	if r.code != core.CodeOK {
		// Error payloads still transfer to the caller: redirects carry
		// their target in the body.
		return r.payload, r.pooled, core.ErrOf(r.code, string(r.payload))
	}
	return r.payload, r.pooled, nil
}

// abandon gives up on a registered call: it removes the pending entry,
// or — when the read pump (or failAll) already claimed it — collects
// the in-flight result so pooled memory is returned and the waiter's
// channel is empty for reuse. It stops tm, recycles w, and returns err.
func (c *Client) abandon(seq uint64, w *waiter, tm *time.Timer, err error) error {
	sh := c.shard(seq)
	sh.mu.Lock()
	_, mine := sh.m[seq]
	if mine {
		delete(sh.m, seq)
	}
	sh.mu.Unlock()
	if !mine {
		// The sender removed the entry first, which means a result is
		// already in the channel or about to be: the send happens
		// immediately after the removal and cannot block. Collect it so
		// the waiter recycles clean.
		r := <-w.ch
		if r.pooled {
			wire.PutBuf(r.payload)
		}
	}
	stopTimer(tm)
	releaseWaiter(w)
	return err
}

// stopTimer quiesces a reused waiter timer: stopped with its channel
// drained, ready for the next Reset.
func stopTimer(tm *time.Timer) {
	if tm != nil && !tm.Stop() {
		select {
		case <-tm.C:
		default:
		}
	}
}

// releaseWaiter recycles per-call state. The caller guarantees the
// channel is empty and any timer is stopped and drained.
func releaseWaiter(w *waiter) {
	w.borrow = false
	w.expiry = 0
	waiterPool.Put(w)
}

// watchdogInterval is the sweep period of the coarse timeout watchdog;
// watchdogMinTimeout is the smallest default timeout it serves. Calls
// with shorter timeouts, virtual clocks, or cancellable contexts keep
// the precise per-call timer, so the coarse path only ever stretches a
// multi-second deadline by at most one sweep.
const (
	watchdogInterval   = 100 * time.Millisecond
	watchdogMinTimeout = time.Second
)

// watchdogTicks converts a timeout into a sweep count, rounding up and
// adding one so a call never expires early when it registers just
// before a sweep.
func watchdogTicks(d time.Duration) uint64 {
	return uint64((d+watchdogInterval-1)/watchdogInterval) + 1
}

// startWatchdog launches the coarse timeout sweeper; it runs until the
// session dies and claims expired waiters exactly like the read pump:
// remove from the pending table first, then deliver.
func (c *Client) startWatchdog() {
	go func() {
		t := time.NewTicker(watchdogInterval)
		defer t.Stop()
		for {
			select {
			case <-c.readerDone:
				return
			case <-t.C:
			}
			now := c.tick.Add(1)
			for i := range c.pending {
				sh := &c.pending[i]
				sh.mu.Lock()
				for seq, w := range sh.m {
					if w.expiry != 0 && now >= w.expiry {
						delete(sh.m, seq)
						w.ch <- callResult{err: fmt.Errorf(
							"rpc: call %s timed out: %w", methodLabel(w.method), core.ErrTimeout)}
					}
				}
				sh.mu.Unlock()
			}
		}
	}()
}

// CallGob marshals req, performs the call and unmarshals into resp
// (which may be nil when no body is expected).
func (c *Client) CallGob(method uint16, req, resp interface{}) error {
	return c.CallGobCtx(context.Background(), method, req, resp)
}

// CallGobCtx is CallGob with cancellation and span propagation.
func (c *Client) CallGobCtx(ctx context.Context, method uint16, req, resp interface{}) error {
	var payload []byte
	var err error
	if req != nil {
		payload, err = Marshal(req)
		if err != nil {
			return err
		}
	}
	out, err := c.CallContext(ctx, method, payload)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	return Unmarshal(out, resp)
}

// Close tears down the session's connections; in-flight calls fail
// with ErrClosed.
func (c *Client) Close() error {
	var err error
	for _, cn := range c.conns {
		if cerr := cn.Close(); err == nil {
			err = cerr
		}
	}
	<-c.readerDone
	return err
}
