package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/wire"
)

// The coarse-deadline watchdog (one sweep per 100ms) and hedge-read
// cancellation both claim pending calls out from under the caller: the
// watchdog delivers ErrTimeout into the waiter channel after removing
// the entry, and a canceled hedge arm abandons its waiter, collecting
// any in-flight result so the pooled buffer is returned. Both paths
// recycle the same sync.Pool waiters over the same session, so a
// double-release in either would hand one waiter to two concurrent
// calls — visible as cross-wired responses, stuck receives, or a
// double-put pooled buffer. This churn test drives both mechanisms at
// once on one session and then proves the session still pairs every
// response with its own request.

const (
	churnEcho  uint16 = 1
	churnStall uint16 = 2
)

// churnStallSleep is how long the stalled handler holds a call: past
// the watchdog expiry for a 1s-timeout call (~1.1s), so the watchdog
// always claims the waiter first and the real response later arrives
// for an unknown seq and must be dropped and freed by the read pump.
const churnStallSleep = 1500 * time.Millisecond

func TestWatchdogHedgeCancellationChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("~2s of real-clock watchdog sweeps")
	}
	handler := func(_ context.Context, _ *ServerConn, method uint16, payload []byte) ([]byte, error) {
		switch method {
		case churnEcho:
			return payload, nil
		case churnStall:
			time.Sleep(churnStallSleep)
			return []byte("late"), nil
		}
		return nil, fmt.Errorf("unknown method %d", method)
	}
	srv := NewServer(BytesHandler(handler), nil)
	addr, err := srv.Listen(fmt.Sprintf("mem://rpc-churn-%p", srv))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// At the watchdog threshold: deadline-less calls ride the coarse
	// sweep; cancellable calls keep the precise select path.
	c.SetTimeout(watchdogMinTimeout)

	// Arm 1: deadline-less stalled calls whose timeouts only the
	// watchdog can deliver.
	const stalls = 3
	var wg sync.WaitGroup
	var watchdogTimeouts atomic.Int32
	for i := 0; i < stalls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Call(churnStall, nil)
			if errors.Is(err, core.ErrTimeout) {
				watchdogTimeouts.Add(1)
			} else {
				t.Errorf("stalled call returned %v, want ErrTimeout from the watchdog", err)
			}
		}()
	}

	// Arm 2: hedge-style churn on the same session — borrowed-buffer
	// reads whose contexts are canceled at random points around the
	// response's arrival, racing abandon() against the read pump. The
	// seed is fixed: a failure reproduces.
	rng := rand.New(rand.NewSource(1304))
	const churn = 600
	for i := 0; i < churn; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		want := fmt.Sprintf("churn-%03d", i)
		if i%2 == 0 {
			delay := time.Duration(rng.Intn(150)) * time.Microsecond
			go func() {
				time.Sleep(delay)
				cancel()
			}()
		}
		out, pooled, err := c.CallBorrowedContext(ctx, churnEcho, []byte(want))
		switch {
		case err == nil:
			if string(out) != want {
				t.Fatalf("cross-wired response: got %q want %q", out, want)
			}
			if pooled {
				wire.PutBuf(out)
			}
		case errors.Is(err, context.Canceled):
			// Abandoned mid-flight; the waiter collected any in-flight
			// pooled result itself.
		default:
			t.Fatalf("churn call %d: %v", i, err)
		}
		cancel()
	}

	// The watchdog must have claimed every stalled waiter...
	wg.Wait()
	if n := watchdogTimeouts.Load(); n != stalls {
		t.Fatalf("watchdog delivered %d timeouts, want %d", n, stalls)
	}
	// ...and the late real responses then arrive for unknown seqs; give
	// them time to hit the read pump's drop path before probing health.
	time.Sleep(churnStallSleep - watchdogMinTimeout + 200*time.Millisecond)

	// The session survives: a concurrent batch still pairs every
	// response with its own request (a leaked or double-released waiter
	// would cross-wire or hang here).
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("after-%d", i)
			out, err := c.Call(churnEcho, []byte(want))
			if err != nil {
				errs <- err
			} else if string(out) != want {
				errs <- fmt.Errorf("post-churn cross-wire: got %q want %q", out, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
