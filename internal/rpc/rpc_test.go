package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jiffy/internal/core"
)

const (
	methodEcho uint16 = iota + 1
	methodFail
	methodNotFound
	methodSlow
	methodSubscribe
	methodPanic
)

func newTestServer(t *testing.T) (addr string, srv *Server) {
	t.Helper()
	var subConns sync.Map
	handler := func(_ context.Context, conn *ServerConn, method uint16, payload []byte) ([]byte, error) {
		switch method {
		case methodEcho:
			return payload, nil
		case methodFail:
			return nil, errors.New("custom failure")
		case methodNotFound:
			return nil, fmt.Errorf("key %q: %w", payload, core.ErrNotFound)
		case methodSlow:
			time.Sleep(50 * time.Millisecond)
			return []byte("slow"), nil
		case methodSubscribe:
			subConns.Store(conn, struct{}{})
			go func() {
				time.Sleep(10 * time.Millisecond)
				conn.Push(77, []byte("notification"))
			}()
			return nil, nil
		case methodPanic:
			panic("boom")
		}
		return nil, fmt.Errorf("unknown method %d", method)
	}
	srv = NewServer(BytesHandler(handler), nil)
	addr, err := srv.Listen(fmt.Sprintf("mem://rpc-test-%p", srv))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func TestCallEcho(t *testing.T) {
	addr, _ := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(methodEcho, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ping" {
		t.Errorf("resp = %q", resp)
	}
}

func TestCallGob(t *testing.T) {
	addr, _ := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	type msg struct {
		A int
		B string
	}
	var out msg
	if err := c.CallGob(methodEcho, msg{A: 42, B: "x"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != 42 || out.B != "x" {
		t.Errorf("out = %+v", out)
	}
}

func TestCallSentinelError(t *testing.T) {
	addr, _ := newTestServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Call(methodNotFound, []byte("k"))
	if !errors.Is(err, core.ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestCallOtherErrorMessage(t *testing.T) {
	addr, _ := newTestServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Call(methodFail, nil)
	if err == nil || err.Error() != "custom failure" {
		t.Errorf("err = %v", err)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	addr, _ := newTestServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call(999, nil); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestConcurrentCalls(t *testing.T) {
	addr, _ := newTestServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			resp, err := c.Call(methodEcho, []byte(want))
			if err != nil {
				errs <- err
				return
			}
			if string(resp) != want {
				errs <- fmt.Errorf("cross-wired response: got %q want %q", resp, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSlowCallDoesNotBlockFastCall(t *testing.T) {
	addr, _ := newTestServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	slowDone := make(chan struct{})
	go func() {
		c.Call(methodSlow, nil)
		close(slowDone)
	}()
	time.Sleep(5 * time.Millisecond) // let the slow call start
	start := time.Now()
	if _, err := c.Call(methodEcho, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Errorf("fast call took %v; head-of-line blocked?", d)
	}
	<-slowDone
}

func TestCallContextCancel(t *testing.T) {
	addr, _ := newTestServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := c.CallContext(ctx, methodSlow, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestPush(t *testing.T) {
	addr, _ := newTestServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	got := make(chan string, 1)
	c.OnPush(func(subID uint64, payload []byte) {
		if subID == 77 {
			got <- string(payload)
		}
	})
	if _, err := c.Call(methodSubscribe, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg != "notification" {
			t.Errorf("push = %q", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("push never arrived")
	}
}

func TestHandlerPanicIsolated(t *testing.T) {
	addr, _ := newTestServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call(methodPanic, nil); err == nil {
		t.Error("panicking handler should return an error")
	}
	// The connection is still usable after a handler panic.
	resp, err := c.Call(methodEcho, []byte("still alive"))
	if err != nil || string(resp) != "still alive" {
		t.Errorf("post-panic call = %q, %v", resp, err)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	addr, _ := newTestServer(t)
	c, _ := Dial(addr)
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(methodSlow, nil)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	if err := <-done; err == nil {
		t.Error("pending call should fail on close")
	}
	if _, err := c.Call(methodEcho, nil); !errors.Is(err, core.ErrClosed) {
		t.Errorf("call after close = %v, want ErrClosed", err)
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	addr, srv := newTestServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call(methodEcho, []byte("x")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.Call(methodEcho, []byte("x")); err == nil {
		t.Error("call after server close should fail")
	}
}

func TestOnDisconnectFires(t *testing.T) {
	addr, srv := newTestServer(t)
	var fired atomic.Int32
	srv.OnDisconnect = func(*ServerConn) { fired.Add(1) }
	c, _ := Dial(addr)
	if _, err := c.Call(methodEcho, nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	deadline := time.Now().Add(time.Second)
	for fired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fired.Load() == 0 {
		t.Error("OnDisconnect never fired")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	type payload struct {
		Path   core.Path
		Blocks []core.BlockInfo
	}
	in := payload{
		Path:   core.MustPath("job", "T1"),
		Blocks: []core.BlockInfo{{ID: 1, Server: "a"}, {ID: 2, Server: "b"}},
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Path != in.Path || len(out.Blocks) != 2 || out.Blocks[1].ID != 2 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestPoolReusesConnections(t *testing.T) {
	addr, _ := newTestServer(t)
	dials := 0
	pool := NewPool(func(a string) (*Client, error) {
		dials++
		return Dial(a)
	})
	defer pool.Close()
	c1, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || dials != 1 {
		t.Errorf("pool dialed %d times, conns equal=%v", dials, c1 == c2)
	}
}

func TestPoolDropForcesRedial(t *testing.T) {
	addr, _ := newTestServer(t)
	dials := 0
	pool := NewPool(func(a string) (*Client, error) {
		dials++
		return Dial(a)
	})
	defer pool.Close()
	c1, _ := pool.Get(addr)
	pool.Drop(addr)
	// The dropped client is closed.
	if _, err := c1.Call(methodEcho, nil); err == nil {
		t.Error("dropped connection still usable")
	}
	c2, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if dials != 2 {
		t.Errorf("dials = %d, want 2", dials)
	}
	if _, err := c2.Call(methodEcho, []byte("x")); err != nil {
		t.Errorf("redialed conn broken: %v", err)
	}
}

func TestPoolClosedRejects(t *testing.T) {
	addr, _ := newTestServer(t)
	pool := NewPool(nil)
	pool.Close()
	if _, err := pool.Get(addr); err == nil {
		t.Error("closed pool handed out a connection")
	}
}

// TestShardedSessionConcurrentCalls drives a 4-connection session from
// 8 goroutines and checks every response lands on the caller that
// issued it (the pending table is shared; the sequence space is
// partitioned across connections).
func TestShardedSessionConcurrentCalls(t *testing.T) {
	addr, _ := newTestServer(t)
	c, err := DialShards(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				want := fmt.Sprintf("g%d-i%d", g, i)
				resp, err := c.Call(methodEcho, []byte(want))
				if err != nil {
					errs <- err
					return
				}
				if string(resp) != want {
					errs <- fmt.Errorf("echo mismatch: got %q want %q", resp, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestShardedSessionFailsAsUnit checks a sharded session stays one
// failure domain: when the server goes away, every connection is torn
// down, pending and future calls fail, and Done() fires — exactly the
// signals the pool and the client's dead-session eviction rely on.
func TestShardedSessionFailsAsUnit(t *testing.T) {
	addr, srv := newTestServer(t)
	c, err := DialShards(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(methodEcho, []byte("up")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("session not marked down after server close")
	}
	if !c.IsClosed() {
		t.Error("IsClosed() = false after server close")
	}
	for i := 0; i < 6; i++ { // covers every shard twice
		if _, err := c.Call(methodEcho, []byte("down")); err == nil {
			t.Fatal("call succeeded on dead sharded session")
		}
	}
}

// TestShardedSessionPush checks server pushes reach the shared OnPush
// hook regardless of which connection carried the subscribe.
func TestShardedSessionPush(t *testing.T) {
	addr, _ := newTestServer(t)
	c, err := DialShards(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make(chan string, 1)
	c.OnPush(func(subID uint64, payload []byte) {
		if subID == 77 {
			got <- string(payload)
		}
	})
	// Issue subscribes from both shards of the sequence space.
	for i := 0; i < 2; i++ {
		if _, err := c.Call(methodSubscribe, nil); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case msg := <-got:
		if msg != "notification" {
			t.Errorf("push payload = %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push not delivered on sharded session")
	}
}

// TestBusyPollEcho smoke-tests the busy-poll wait path end to end.
func TestBusyPollEcho(t *testing.T) {
	addr, _ := newTestServer(t)
	dial := WithBusyPoll(nil)
	c, err := dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		resp, err := c.Call(methodEcho, []byte("spin"))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "spin" {
			t.Fatalf("resp = %q", resp)
		}
	}
}
