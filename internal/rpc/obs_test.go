package rpc

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/obs"
	"jiffy/internal/proto"
)

// TestSpanPropagation proves the acceptance criterion that span IDs
// propagate client→server over both transports: the server-side span
// must share the client span's trace ID and name the client span as
// its parent.
func TestSpanPropagation(t *testing.T) {
	for _, addr := range []string{"mem://spanprop", "127.0.0.1:0"} {
		t.Run(addr, func(t *testing.T) {
			srvRing := obs.NewRingExporter(64)
			srv := NewServer(BytesHandler(func(_ context.Context, _ *ServerConn, method uint16, payload []byte) ([]byte, error) {
				return append([]byte(nil), payload...), nil
			}), nil)
			srv.SetObserver(obs.NewRPCMetrics("server"), obs.NewTracer(srvRing, nil))
			bound, err := srv.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			cliRing := obs.NewRingExporter(64)
			c, err := Dial(bound)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			c.SetInstrumentation(obs.NewRPCMetrics("client"), obs.NewTracer(cliRing, nil), bound)

			out, err := c.CallContext(context.Background(), proto.MethodDataOp, []byte("ping"))
			if err != nil || !bytes.Equal(out, []byte("ping")) {
				t.Fatalf("call: %q, %v", out, err)
			}

			cliSpans := cliRing.Snapshot()
			if len(cliSpans) != 1 {
				t.Fatalf("client spans = %d, want 1", len(cliSpans))
			}
			// The server records asynchronously after writing the response;
			// wait briefly for the export.
			var srvSpans []obs.SpanEvent
			for i := 0; i < 100; i++ {
				if srvSpans = srvRing.Snapshot(); len(srvSpans) == 1 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if len(srvSpans) != 1 {
				t.Fatalf("server spans = %d, want 1", len(srvSpans))
			}
			cs, ss := cliSpans[0], srvSpans[0]
			if cs.TraceID == 0 || cs.TraceID != ss.TraceID {
				t.Fatalf("trace IDs do not match: client %x server %x", cs.TraceID, ss.TraceID)
			}
			if ss.ParentID != cs.SpanID {
				t.Fatalf("server span parent %x, want client span %x", ss.ParentID, cs.SpanID)
			}
			if cs.Name != "rpc:DataOp" || ss.Name != "srv:DataOp" {
				t.Fatalf("span names: %q / %q", cs.Name, ss.Name)
			}
		})
	}
}

// TestSpanPropagationUntracedServer: a traced client talking to a
// server without an observer must work unchanged — the trace extension
// is optional and ignored.
func TestSpanPropagationUntracedServer(t *testing.T) {
	srv := NewServer(BytesHandler(func(_ context.Context, _ *ServerConn, _ uint16, payload []byte) ([]byte, error) {
		return append([]byte(nil), payload...), nil
	}), nil)
	bound, err := srv.Listen("mem://spanprop-untraced")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetInstrumentation(nil, obs.NewTracer(obs.NewRingExporter(8), nil), bound)
	for i := 0; i < 3; i++ {
		if _, err := c.CallContext(context.Background(), proto.MethodDataOp, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPerMethodMetrics: the client- and server-side tables must agree
// on request counts per method, and the latency histogram count must
// equal the request counter (the no-lost-samples invariant).
func TestPerMethodMetrics(t *testing.T) {
	serverMetrics := obs.NewRPCMetrics("server")
	srv := NewServer(BytesHandler(func(_ context.Context, _ *ServerConn, method uint16, payload []byte) ([]byte, error) {
		if method == proto.MethodCreateBlock {
			return nil, core.ErrExists
		}
		return append([]byte(nil), payload...), nil
	}), nil)
	srv.SetObserver(serverMetrics, nil)
	bound, err := srv.Listen("mem://permethod")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clientMetrics := obs.NewRPCMetrics("client")
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetInstrumentation(clientMetrics, nil, bound)

	for i := 0; i < 5; i++ {
		if _, err := c.CallContext(context.Background(), proto.MethodDataOp, []byte("abc")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CallContext(context.Background(), proto.MethodCreateBlock, nil); !errors.Is(err, core.ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}

	// Server-side stats are recorded after the response frame is
	// written, so the last call can still be in flight on the server's
	// bookkeeping when CallContext returns; wait for the quiesce.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if serverMetrics.Method(proto.MethodDataOp).Latency.Count() == 5 &&
			serverMetrics.Method(proto.MethodCreateBlock).Latency.Count() == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	for _, tc := range []struct {
		m      *obs.RPCMetrics
		method uint16
		reqs   int64
		errs   int64
	}{
		{clientMetrics, proto.MethodDataOp, 5, 0},
		{clientMetrics, proto.MethodCreateBlock, 1, 1},
		{serverMetrics, proto.MethodDataOp, 5, 0},
		{serverMetrics, proto.MethodCreateBlock, 1, 1},
	} {
		s := tc.m.Method(tc.method)
		if got := s.Requests.Value(); got != tc.reqs {
			t.Errorf("%s %s requests = %d, want %d", tc.m.Role, proto.MethodName(tc.method), got, tc.reqs)
		}
		if got := s.Errors.Value(); got != tc.errs {
			t.Errorf("%s %s errors = %d, want %d", tc.m.Role, proto.MethodName(tc.method), got, tc.errs)
		}
		if s.Latency.Count() != s.Requests.Value() {
			t.Errorf("%s %s histogram count %d != requests %d",
				tc.m.Role, proto.MethodName(tc.method), s.Latency.Count(), s.Requests.Value())
		}
		if got := s.InFlight.Value(); got != 0 {
			t.Errorf("%s %s in-flight = %d after quiesce", tc.m.Role, proto.MethodName(tc.method), got)
		}
	}
	if got := clientMetrics.Method(proto.MethodDataOp).BytesOut.Value(); got != 15 {
		t.Errorf("client bytes out = %d, want 15", got)
	}
}

// TestCallContextCancellation: a canceled context must fail the call
// with context.Canceled; an expired ctx deadline must map onto the
// typed ErrTimeout while still unwrapping to DeadlineExceeded, and it
// must take precedence over the session default timeout.
func TestCallContextCancellation(t *testing.T) {
	block := make(chan struct{})
	srv := NewServer(BytesHandler(func(_ context.Context, _ *ServerConn, _ uint16, _ []byte) ([]byte, error) {
		<-block
		return nil, nil
	}), nil)
	bound, err := srv.Listen("mem://cancel")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Unblock handlers before srv.Close (defers run LIFO); Close waits
	// for in-flight handlers to drain.
	defer close(block)

	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(time.Hour) // ctx deadline must win over this

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.CallContext(ctx, proto.MethodDataOp, nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not fail the pending call")
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer dcancel()
	start := time.Now()
	_, err = c.CallContext(dctx, proto.MethodDataOp, nil)
	if !errors.Is(err, core.ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrTimeout wrapping DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not take precedence over session timeout (%v)", elapsed)
	}
}
