package rpc

import (
	"fmt"
	"sync"

	"jiffy/internal/core"
)

// Pool caches one Client per remote address. Both the controller (which
// calls into every memory server) and the client library (which talks
// to the controller plus the servers hosting its blocks) use it.
type Pool struct {
	mu     sync.Mutex
	conns  map[string]*Client
	dial   func(addr string) (*Client, error)
	closed bool
}

// NewPool creates a pool using dial (defaults to Dial).
func NewPool(dial func(addr string) (*Client, error)) *Pool {
	if dial == nil {
		dial = Dial
	}
	return &Pool{conns: make(map[string]*Client), dial: dial}
}

// Get returns the cached client for addr, dialing on first use. A
// cached session whose read pump has died is evicted and re-dialed
// transparently, so callers never receive a client that can only fail.
func (p *Pool) Get(addr string) (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, core.ErrClosed
	}
	if c, ok := p.conns[addr]; ok {
		if !c.IsClosed() {
			p.mu.Unlock()
			return c, nil
		}
		delete(p.conns, addr)
	}
	p.mu.Unlock()

	// Dial outside the lock; racing dials are resolved below. An
	// unreachable address classifies as a connection failure: before
	// dead-session eviction existed, callers saw ErrClosed from the
	// cached dead session's first call, and retry/fallback logic
	// throughout keys on that classification.
	c, err := p.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %v: %w", addr, err, core.ErrClosed)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return nil, core.ErrClosed
	}
	if existing, ok := p.conns[addr]; ok {
		c.Close()
		return existing, nil
	}
	p.conns[addr] = c
	return c, nil
}

// Drop removes and closes the cached client for addr (after a
// connection-level failure, so the next Get re-dials).
func (p *Pool) Drop(addr string) {
	p.mu.Lock()
	c, ok := p.conns[addr]
	delete(p.conns, addr)
	p.mu.Unlock()
	if ok {
		c.Close()
	}
}

// Close closes every cached connection.
func (p *Pool) Close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = map[string]*Client{}
	p.closed = true
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
