package rpc

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"sync"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/obs"
	"jiffy/internal/wire"
)

// Response is a handler's reply.
//
// Ownership contract: Payload passes to the rpc layer, which recycles
// it into the wire buffer pool once the response frame is written —
// so it must be freshly encoded (rpc.Marshal, ds codec helpers) or
// taken from wire.GetBuf, never a slice aliasing long-lived state.
// Vec segments are the opposite: they MAY alias long-lived block
// memory (that is the zero-copy read path's whole point), and the rpc
// layer only reads them. Release tells the handler when that reading
// is over.
type Response struct {
	// Payload is the contiguous response body, written first.
	Payload []byte
	// Vec is an optional scatter-gather body written after Payload;
	// on the wire the two concatenate into one response payload.
	Vec [][]byte
	// Release, if non-nil, runs exactly once when the connection is
	// done with the frame's bytes — staged into the session write
	// buffer or handed to the socket, on success and error alike. It is
	// the point where memory aliased by Vec may be unpinned (e.g. a
	// file chunk's read lease dropped).
	Release func()
}

// BytesResponse wraps a contiguous body in a Response.
func BytesResponse(b []byte) Response { return Response{Payload: b} }

// Handler processes one request. ctx carries cancellation and the
// propagated span context when the client attached a trace-extension
// frame (handlers thread it into any onward RPCs so traces span
// hops); conn identifies the client connection (used by the
// notification machinery to push frames back); method is the method
// identifier; payload the request body. The returned Response becomes
// the response body (see its ownership contract); a returned error
// maps onto a wire error code (sentinels from internal/core travel
// losslessly).
type Handler func(ctx context.Context, conn *ServerConn, method uint16, payload []byte) (Response, error)

// BytesHandler adapts a contiguous-payload handler function to the
// Handler contract — the natural shape for control planes whose
// replies are always freshly gob-encoded.
func BytesHandler(fn func(ctx context.Context, conn *ServerConn, method uint16, payload []byte) ([]byte, error)) Handler {
	return func(ctx context.Context, conn *ServerConn, method uint16, payload []byte) (Response, error) {
		b, err := fn(ctx, conn, method, payload)
		return Response{Payload: b}, err
	}
}

// ErrDispatchAsync is returned by an inline handler to refuse inline
// execution: the request is re-dispatched on its own goroutine through
// the regular handler, with the frame copied out of connection-owned
// storage first. Inline handlers return it whenever the operation might
// block (onward replication RPCs, tier rehydration IO, admission-gate
// waits) so the read pump never stalls behind one slow request.
var ErrDispatchAsync = errors.New("rpc: dispatch async")

// Server accepts framed connections and dispatches requests to a
// Handler. Each connection gets a read pump; each request runs in its
// own goroutine so slow handlers don't head-of-line-block a session —
// matching the paper's asynchronous framed IO design. Small requests of
// methods cleared by an inline predicate can instead run directly on
// the read pump (see SetInlineHandler), which removes the per-request
// goroutine and frame copy from the single-op hot path.
type Server struct {
	handler Handler
	lis     net.Listener
	log     *slog.Logger

	// inlineHandler, when set, runs requests matching inlineFast
	// synchronously on the connection's read pump. See SetInlineHandler.
	inlineHandler Handler
	inlineFast    func(method uint16, payloadLen int) bool

	mu     sync.Mutex
	conns  map[*ServerConn]struct{}
	closed bool

	wg sync.WaitGroup

	// metrics/tracer are the optional server-side telemetry sinks,
	// installed via SetObserver before Listen.
	metrics *obs.RPCMetrics
	tracer  *obs.Tracer

	// OnDisconnect, if set, runs after a client connection is torn
	// down; the subscription registry uses it to drop dead listeners.
	OnDisconnect func(*ServerConn)
}

// SetObserver attaches inbound-dispatch telemetry: per-method metrics
// and a tracer recording one server-side span per traced request.
// Must be called before Listen.
func (s *Server) SetObserver(m *obs.RPCMetrics, tr *obs.Tracer) {
	s.metrics = m
	s.tracer = tr
}

// SetInlineHandler installs the inline fast path: requests whose
// method and payload size pass fast run through h directly on the
// connection's read pump, with the request frame decoded in
// connection-owned storage (zero copies, zero goroutines). h must
// either complete without blocking on anything slower than local locks
// or return ErrDispatchAsync, in which case the request falls back to
// the regular goroutine dispatch path. The payload h sees is only
// valid until it returns. Telemetry, trace pairing, and the response
// ownership contract behave exactly as on the regular path. Must be
// called before Listen.
func (s *Server) SetInlineHandler(h Handler, fast func(method uint16, payloadLen int) bool) {
	s.inlineHandler = h
	s.inlineFast = fast
}

// NewServer creates a server around handler. Call Serve to start.
func NewServer(handler Handler, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.Default()
	}
	return &Server{
		handler: handler,
		log:     logger,
		conns:   make(map[*ServerConn]struct{}),
	}
}

// Listen binds addr (TCP or mem://) and starts serving in background
// goroutines. It returns the bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	lis, err := wire.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(lis)
	}()
	return lis.Addr().String(), nil
}

func (s *Server) acceptLoop(lis net.Listener) {
	for {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		sc := &ServerConn{conn: wire.NewConn(nc), srv: s}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sc.readLoop()
			s.dropConn(sc)
		}()
	}
}

func (s *Server) dropConn(sc *ServerConn) {
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
	sc.conn.Close()
	if s.OnDisconnect != nil {
		s.OnDisconnect(sc)
	}
}

// Close stops accepting, closes all live connections and waits for
// handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	conns := make([]*ServerConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.conn.Close()
	}
	s.wg.Wait()
	return nil
}

// ServerConn represents one client connection on the server side.
// Handlers may retain it to push notifications later; Push fails once
// the peer disconnects.
type ServerConn struct {
	conn *wire.Conn
	srv  *Server

	reqWG sync.WaitGroup
}

// Push sends an unsolicited notification frame tagged with subID.
func (sc *ServerConn) Push(subID uint64, payload []byte) error {
	return sc.conn.WriteFrame(&wire.Frame{
		Kind:    wire.KindPush,
		Seq:     subID,
		Payload: payload,
	})
}

// RemoteAddr exposes the peer address.
func (sc *ServerConn) RemoteAddr() net.Addr { return sc.conn.RemoteAddr() }

// maxPendingTrace bounds the per-connection trace-extension pairing
// map so a peer spraying extensions without requests cannot grow it
// unboundedly.
const maxPendingTrace = 4096

// traceCache pairs trace-extension frames with the request that
// follows under the same seq. Single-goroutine use (the connection's
// read loop). When a burst of orphaned extensions fills it, the stale
// pairings are dropped wholesale: losing trace parentage for in-flight
// requests of one pathological burst is better than refusing every
// new pairing for the rest of the connection's life.
type traceCache struct {
	m map[uint64]obs.SpanContext
}

func (tc *traceCache) put(seq uint64, sc obs.SpanContext) {
	if tc.m == nil {
		tc.m = make(map[uint64]obs.SpanContext)
	}
	if len(tc.m) >= maxPendingTrace {
		clear(tc.m)
	}
	tc.m[seq] = sc
}

func (tc *traceCache) take(seq uint64) (sc obs.SpanContext) {
	if len(tc.m) == 0 {
		return
	}
	sc = tc.m[seq]
	delete(tc.m, seq)
	return
}

func (sc *ServerConn) readLoop() {
	var pending traceCache
	inlineH, inlineFast := sc.srv.inlineHandler, sc.srv.inlineFast
	for {
		f, reused, err := sc.conn.ReadFrameReused()
		if err != nil {
			sc.reqWG.Wait()
			return
		}
		switch f.Kind {
		case wire.KindRequest:
		case wire.KindTraceExt:
			// DecodeTraceExt copies the IDs out, so a reused payload is
			// safe to pair here.
			if trace, span, ok := wire.DecodeTraceExt(f.Payload); ok {
				pending.put(f.Seq, obs.SpanContext{TraceID: trace, SpanID: span})
			}
			continue
		default:
			continue // ignore stray frames
		}
		trace := pending.take(f.Seq)
		if inlineH != nil && inlineFast(f.Method, len(f.Payload)) {
			if sc.dispatchInline(f, trace) {
				continue
			}
			// Handler punted (might block): fall through to a goroutine.
		}
		if reused {
			// The goroutine outlives this iteration; give it an owned
			// copy of the connection-owned frame.
			f = cloneOwned(f)
		}
		sc.reqWG.Add(1)
		go func(f *wire.Frame, trace obs.SpanContext) {
			defer sc.reqWG.Done()
			sc.dispatch(f, trace)
		}(f, trace)
	}
}

// cloneOwned heap-copies a frame decoded in connection-owned storage.
func cloneOwned(f *wire.Frame) *wire.Frame {
	g := &wire.Frame{Kind: f.Kind, Seq: f.Seq, Method: f.Method, Code: f.Code}
	if len(f.Payload) > 0 {
		g.Payload = append([]byte(nil), f.Payload...)
	}
	return g
}

// dispatchState carries the pre-handler telemetry snapshot from begin
// to finish. Passed by value so the uninstrumented path allocates
// nothing.
type dispatchState struct {
	ctx    context.Context
	stats  *obs.MethodStats
	tracer *obs.Tracer
	start  time.Time
	spanID uint64
}

// begin opens one request's dispatch: per-method stats, the server-side
// span, and the handler context.
func (sc *ServerConn) begin(f *wire.Frame, trace obs.SpanContext) dispatchState {
	st := dispatchState{ctx: context.Background()}
	metrics, tracer := sc.srv.metrics, sc.srv.tracer
	if !obs.On() {
		metrics, tracer = nil, nil
	}
	if metrics != nil || (tracer != nil && trace.Valid()) {
		st.start = time.Now()
	}
	if metrics != nil {
		st.stats = metrics.Method(f.Method)
		st.stats.Requests.Inc()
		st.stats.BytesIn.Add(int64(len(f.Payload)))
		st.stats.InFlight.Inc()
	}
	if trace.Valid() {
		if tracer != nil {
			// One server-side span per traced request, child of the
			// client's span; the handler ctx carries it onward.
			st.tracer = tracer
			st.spanID = obs.NewID()
			st.ctx = obs.ContextWithSpan(st.ctx, obs.SpanContext{TraceID: trace.TraceID, SpanID: st.spanID})
		} else {
			// No local recorder: pass the inbound span through untouched
			// so downstream hops stay in the trace.
			st.ctx = obs.ContextWithSpan(st.ctx, trace)
		}
	}
	return st
}

func (sc *ServerConn) dispatch(f *wire.Frame, trace obs.SpanContext) {
	st := sc.begin(f, trace)
	resp, err := sc.callHandler(st.ctx, f)
	sc.finish(f, trace, st, resp, err)
}

// dispatchInline runs one request on the read pump through the inline
// handler. It reports false — leaving the frame untouched — when the
// handler declines with ErrDispatchAsync.
func (sc *ServerConn) dispatchInline(f *wire.Frame, trace obs.SpanContext) bool {
	st := sc.begin(f, trace)
	resp, err := sc.callInlineHandler(st.ctx, f)
	if err == ErrDispatchAsync {
		// Undo begin's in-flight mark; the goroutine path will begin anew.
		if st.stats != nil {
			st.stats.Requests.Add(-1)
			st.stats.BytesIn.Add(-int64(len(f.Payload)))
			st.stats.InFlight.Dec()
		}
		return false
	}
	sc.finish(f, trace, st, resp, err)
	return true
}

// finish writes the response frame and closes out the telemetry opened
// by begin. Shared by the inline and goroutine dispatch paths.
func (sc *ServerConn) finish(f *wire.Frame, trace obs.SpanContext, st dispatchState, resp Response, err error) {
	// The release hook rides on the frame so it fires exactly once on
	// every write path — success, staging error, or dead connection —
	// which is what lets handlers lease block memory into Vec.
	out := wire.Frame{Kind: wire.KindResponse, Seq: f.Seq, Release: resp.Release}
	if err != nil {
		out.Code = core.CodeOf(err)
		if out.Code == core.CodeOther {
			out.Payload = []byte(err.Error())
		} else {
			// Sentinel errors may carry a redirect/diagnostic payload.
			out.Payload = resp.Payload
			out.PayloadVec = resp.Vec
		}
	} else {
		out.Payload = resp.Payload
		out.PayloadVec = resp.Vec
	}
	respBytes := out.PayloadLen()
	if werr := sc.conn.WriteFrame(&out); werr != nil && !errors.Is(werr, net.ErrClosed) {
		sc.srv.log.Debug("rpc: response write failed", "err", werr)
	}

	if st.tracer != nil && trace.Valid() {
		ev := obs.SpanEvent{
			TraceID:  trace.TraceID,
			SpanID:   st.spanID,
			ParentID: trace.SpanID,
			Name:     "srv:" + methodLabel(f.Method),
			Peer:     sc.conn.RemoteAddr().String(),
			Start:    st.start,
			Duration: time.Since(st.start),
		}
		if err != nil {
			ev.Err = err.Error()
		}
		st.tracer.Record(ev)
	}
	if st.stats != nil {
		st.stats.InFlight.Dec()
		st.stats.Latency.ObserveDuration(time.Since(st.start))
		st.stats.BytesOut.Add(int64(respBytes))
		if err != nil {
			st.stats.Errors.Inc()
		}
	}
	// WriteFrame consumed the contiguous payload (see the Response
	// ownership contract); recycle it for the next response. Vec
	// segments are the handler's memory — never pooled here.
	wire.PutBuf(resp.Payload)
}

func (sc *ServerConn) callHandler(ctx context.Context, f *wire.Frame) (resp Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			sc.srv.log.Error("rpc: handler panic", "method", f.Method, "panic", r)
			resp, err = Response{}, core.ErrClosed
		}
	}()
	return sc.srv.handler(ctx, sc, f.Method, f.Payload)
}

func (sc *ServerConn) callInlineHandler(ctx context.Context, f *wire.Frame) (resp Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			sc.srv.log.Error("rpc: inline handler panic", "method", f.Method, "panic", r)
			resp, err = Response{}, core.ErrClosed
		}
	}()
	return sc.srv.inlineHandler(ctx, sc, f.Method, f.Payload)
}
