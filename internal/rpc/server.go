package rpc

import (
	"errors"
	"log/slog"
	"net"
	"sync"

	"jiffy/internal/core"
	"jiffy/internal/wire"
)

// Handler processes one request. conn identifies the client connection
// (used by the notification machinery to push frames back); method is
// the method identifier; payload the request body. The returned bytes
// become the response body; a returned error maps onto a wire error
// code (sentinels from internal/core travel losslessly).
//
// Ownership contract: the returned payload passes to the rpc layer,
// which recycles it into the wire buffer pool once the response frame
// is written. Handlers must therefore return a buffer they no longer
// reference after returning — freshly encoded (rpc.Marshal,
// ds.EncodeVals) or taken from wire.GetBuf — never a slice aliasing
// long-lived state.
type Handler func(conn *ServerConn, method uint16, payload []byte) ([]byte, error)

// Server accepts framed connections and dispatches requests to a
// Handler. Each connection gets a read pump; each request runs in its
// own goroutine so slow handlers don't head-of-line-block a session —
// matching the paper's asynchronous framed IO design.
type Server struct {
	handler Handler
	lis     net.Listener
	log     *slog.Logger

	mu     sync.Mutex
	conns  map[*ServerConn]struct{}
	closed bool

	wg sync.WaitGroup

	// OnDisconnect, if set, runs after a client connection is torn
	// down; the subscription registry uses it to drop dead listeners.
	OnDisconnect func(*ServerConn)
}

// NewServer creates a server around handler. Call Serve to start.
func NewServer(handler Handler, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.Default()
	}
	return &Server{
		handler: handler,
		log:     logger,
		conns:   make(map[*ServerConn]struct{}),
	}
}

// Listen binds addr (TCP or mem://) and starts serving in background
// goroutines. It returns the bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	lis, err := wire.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(lis)
	}()
	return lis.Addr().String(), nil
}

func (s *Server) acceptLoop(lis net.Listener) {
	for {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		sc := &ServerConn{conn: wire.NewConn(nc), srv: s}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sc.readLoop()
			s.dropConn(sc)
		}()
	}
}

func (s *Server) dropConn(sc *ServerConn) {
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
	sc.conn.Close()
	if s.OnDisconnect != nil {
		s.OnDisconnect(sc)
	}
}

// Close stops accepting, closes all live connections and waits for
// handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	conns := make([]*ServerConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.conn.Close()
	}
	s.wg.Wait()
	return nil
}

// ServerConn represents one client connection on the server side.
// Handlers may retain it to push notifications later; Push fails once
// the peer disconnects.
type ServerConn struct {
	conn *wire.Conn
	srv  *Server

	reqWG sync.WaitGroup
}

// Push sends an unsolicited notification frame tagged with subID.
func (sc *ServerConn) Push(subID uint64, payload []byte) error {
	return sc.conn.WriteFrame(&wire.Frame{
		Kind:    wire.KindPush,
		Seq:     subID,
		Payload: payload,
	})
}

// RemoteAddr exposes the peer address.
func (sc *ServerConn) RemoteAddr() net.Addr { return sc.conn.RemoteAddr() }

func (sc *ServerConn) readLoop() {
	for {
		f, err := sc.conn.ReadFrame()
		if err != nil {
			sc.reqWG.Wait()
			return
		}
		if f.Kind != wire.KindRequest {
			continue // ignore stray frames
		}
		sc.reqWG.Add(1)
		go func(f *wire.Frame) {
			defer sc.reqWG.Done()
			sc.dispatch(f)
		}(f)
	}
}

func (sc *ServerConn) dispatch(f *wire.Frame) {
	resp, err := sc.callHandler(f)
	out := &wire.Frame{Kind: wire.KindResponse, Seq: f.Seq}
	if err != nil {
		out.Code = core.CodeOf(err)
		if out.Code == core.CodeOther {
			out.Payload = []byte(err.Error())
		} else {
			// Sentinel errors may carry a redirect/diagnostic payload.
			out.Payload = resp
		}
	} else {
		out.Payload = resp
	}
	if werr := sc.conn.WriteFrame(out); werr != nil && !errors.Is(werr, net.ErrClosed) {
		sc.srv.log.Debug("rpc: response write failed", "err", werr)
	}
	// WriteFrame consumed the payload (see the Handler ownership
	// contract); recycle it for the next response.
	wire.PutBuf(out.Payload)
}

func (sc *ServerConn) callHandler(f *wire.Frame) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			sc.srv.log.Error("rpc: handler panic", "method", f.Method, "panic", r)
			err = core.ErrClosed
		}
	}()
	return sc.srv.handler(sc, f.Method, f.Payload)
}
