package tier

import (
	"math/rand"
	"testing"
	"time"

	"jiffy/internal/core"
)

func idsOf(plan []core.BlockID) map[core.BlockID]bool {
	m := make(map[core.BlockID]bool, len(plan))
	for _, id := range plan {
		m[id] = true
	}
	return m
}

func TestPlanPressureDemotesColdestFirst(t *testing.T) {
	now := time.Unix(1000, 0)
	p := Policy{WatermarkBytes: 100, Cooldown: 10 * time.Second}
	resident := []Candidate{
		{ID: 1, Bytes: 60, LastAccess: now.Add(-3 * time.Minute), PromotedAt: now.Add(-time.Hour)},
		{ID: 2, Bytes: 60, LastAccess: now.Add(-1 * time.Minute), PromotedAt: now.Add(-time.Hour)},
		{ID: 3, Bytes: 60, LastAccess: now.Add(-2 * time.Minute), PromotedAt: now.Add(-time.Hour)},
	}
	plan := p.Plan(now, resident)
	// 180 resident, watermark 100: two demotions needed; coldest are 1 and 3.
	if len(plan) != 2 {
		t.Fatalf("plan = %v, want 2 victims", plan)
	}
	got := idsOf(plan)
	if !got[1] || !got[3] {
		t.Fatalf("plan = %v, want blocks 1 and 3 (coldest)", plan)
	}
}

func TestPlanRespectsCooldownUnderPressure(t *testing.T) {
	now := time.Unix(1000, 0)
	p := Policy{WatermarkBytes: 10, Cooldown: 10 * time.Second}
	resident := []Candidate{
		// Way over watermark, but both blocks were just promoted.
		{ID: 1, Bytes: 500, LastAccess: now, PromotedAt: now.Add(-time.Second)},
		{ID: 2, Bytes: 500, LastAccess: now, PromotedAt: now.Add(-9 * time.Second)},
	}
	if plan := p.Plan(now, resident); len(plan) != 0 {
		t.Fatalf("plan = %v, want none: cooldown beats pressure", plan)
	}
}

func TestPlanSkipsPinned(t *testing.T) {
	now := time.Unix(1000, 0)
	p := Policy{WatermarkBytes: 10, Cooldown: 0, IdleAfter: time.Second}
	resident := []Candidate{
		{ID: 1, Bytes: 500, LastAccess: now.Add(-time.Hour), PromotedAt: now.Add(-time.Hour), Pinned: true},
	}
	if plan := p.Plan(now, resident); len(plan) != 0 {
		t.Fatalf("plan = %v, want none: pinned blocks stay", plan)
	}
}

func TestPlanIdleDemotionWithoutPressure(t *testing.T) {
	now := time.Unix(1000, 0)
	p := Policy{WatermarkBytes: 1 << 30, Cooldown: time.Second, IdleAfter: time.Minute}
	resident := []Candidate{
		{ID: 1, Bytes: 10, LastAccess: now.Add(-2 * time.Minute), PromotedAt: now.Add(-time.Hour)},
		{ID: 2, Bytes: 10, LastAccess: now.Add(-time.Second), PromotedAt: now.Add(-time.Hour)},
	}
	plan := p.Plan(now, resident)
	if len(plan) != 1 || plan[0] != 1 {
		t.Fatalf("plan = %v, want exactly the idle block 1", plan)
	}
}

func TestPlanDisabledPolicyPlansNothing(t *testing.T) {
	now := time.Unix(1000, 0)
	var p Policy // zero watermark, zero idle window
	resident := []Candidate{
		{ID: 1, Bytes: 1 << 40, LastAccess: now.Add(-time.Hour), PromotedAt: now.Add(-time.Hour)},
	}
	if plan := p.Plan(now, resident); len(plan) != 0 {
		t.Fatalf("plan = %v, want none from a disabled policy", plan)
	}
}

func TestPlanDeterministic(t *testing.T) {
	now := time.Unix(1000, 0)
	p := Policy{WatermarkBytes: 50, Cooldown: time.Second, IdleAfter: time.Minute}
	resident := []Candidate{
		{ID: 3, Bytes: 30, LastAccess: now.Add(-time.Minute), PromotedAt: now.Add(-time.Hour)},
		{ID: 1, Bytes: 30, LastAccess: now.Add(-time.Minute), PromotedAt: now.Add(-time.Hour)},
		{ID: 2, Bytes: 30, LastAccess: now.Add(-30 * time.Second), PromotedAt: now.Add(-time.Hour)},
	}
	first := p.Plan(now, resident)
	for i := 0; i < 10; i++ {
		// Shuffle the input; the plan must not change.
		rand.New(rand.NewSource(int64(i))).Shuffle(len(resident), func(a, b int) {
			resident[a], resident[b] = resident[b], resident[a]
		})
		got := p.Plan(now, resident)
		if len(got) != len(first) {
			t.Fatalf("plan %v differs from first plan %v", got, first)
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("plan %v differs from first plan %v", got, first)
			}
		}
	}
}

// simBlock is one block in the property-test simulation.
type simBlock struct {
	id         core.BlockID
	bytes      int64
	lastAccess time.Time
	promotedAt time.Time
	resident   bool
	demotedAt  time.Time // last demotion, for the no-thrash check
}

// TestPropertyNoThrashAndBoundedOvershoot drives random access
// sequences through the policy and checks the two tiering invariants
// after every scan:
//
//  1. No thrash: every planned demotion is at least Cooldown past the
//     block's promotion (unconditionally).
//  2. Bounded overshoot: resident bytes are <= watermark + one
//     max-block-size, unless every resident block is still inside its
//     cooldown window (the only state in which the policy is allowed
//     to leave the server over the watermark).
func TestPropertyNoThrashAndBoundedOvershoot(t *testing.T) {
	const (
		maxBlockSize = 64 << 10
		numBlocks    = 24
		steps        = 400
	)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := Policy{
			WatermarkBytes: int64(numBlocks/4) * maxBlockSize,
			Cooldown:       time.Duration(1+rng.Intn(20)) * time.Second,
			IdleAfter:      time.Duration(rng.Intn(120)) * time.Second, // 0 disables
		}
		now := time.Unix(0, 0)
		blocks := make([]*simBlock, numBlocks)
		for i := range blocks {
			blocks[i] = &simBlock{
				id:         core.BlockID(i + 1),
				bytes:      int64(1 + rng.Intn(maxBlockSize)),
				lastAccess: now,
				promotedAt: now,
				resident:   true,
			}
		}

		for step := 0; step < steps; step++ {
			now = now.Add(time.Duration(1+rng.Intn(5000)) * time.Millisecond)

			// Random accesses; touching a tiered block rehydrates it
			// (promotion), which restarts its cooldown clock.
			for i := 0; i < rng.Intn(6); i++ {
				b := blocks[rng.Intn(numBlocks)]
				b.lastAccess = now
				if !b.resident {
					b.resident = true
					b.promotedAt = now
				}
			}

			var cands []Candidate
			for _, b := range blocks {
				if b.resident {
					cands = append(cands, Candidate{
						ID: b.id, Bytes: b.bytes,
						LastAccess: b.lastAccess, PromotedAt: b.promotedAt,
					})
				}
			}
			plan := p.Plan(now, cands)

			byID := make(map[core.BlockID]*simBlock, numBlocks)
			for _, b := range blocks {
				byID[b.id] = b
			}
			for _, id := range plan {
				b := byID[id]
				if !b.resident {
					t.Fatalf("seed %d step %d: plan demotes non-resident block %v", seed, step, id)
				}
				// Invariant 1: no thrash, unconditionally.
				if age := now.Sub(b.promotedAt); age < p.Cooldown {
					t.Fatalf("seed %d step %d: block %v demoted %v after promotion, cooldown %v",
						seed, step, id, age, p.Cooldown)
				}
				b.resident = false
				b.demotedAt = now
			}

			// Invariant 2: bounded overshoot after the scan.
			var residentBytes int64
			allCoolingDown := true
			for _, b := range blocks {
				if b.resident {
					residentBytes += b.bytes
					if now.Sub(b.promotedAt) >= p.Cooldown {
						allCoolingDown = false
					}
				}
			}
			if residentBytes > p.WatermarkBytes+maxBlockSize && !allCoolingDown {
				t.Fatalf("seed %d step %d: resident %d > watermark %d + max block %d with demotable blocks left",
					seed, step, residentBytes, p.WatermarkBytes, maxBlockSize)
			}
		}
	}
}

func TestObjectCodecRoundTrip(t *testing.T) {
	in := Object{
		Block:    42,
		Gen:      7,
		Type:     core.DSKV,
		Capacity: 64 << 10,
		NumSlots: 64,
		Chunk:    3,
		Snapshot: []byte("partition snapshot bytes"),
	}
	out, err := Decode(Encode(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Block != in.Block || out.Gen != in.Gen || out.Type != in.Type ||
		out.Capacity != in.Capacity || out.NumSlots != in.NumSlots ||
		out.Chunk != in.Chunk || string(out.Snapshot) != string(in.Snapshot) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestObjectCodecRejectsCorruption(t *testing.T) {
	enc := Encode(Object{Block: 1, Gen: 1, Type: core.DSFile, Capacity: 10, Snapshot: []byte("abc")})
	cases := map[string][]byte{
		"empty":     nil,
		"truncated": enc[:len(enc)-5],
		"magic":     append([]byte("XXXX"), enc[4:]...),
	}
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)-6] ^= 0xff // corrupt snapshot, keep length
	cases["bitflip"] = flipped
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}
