package tier

import (
	"bytes"
	"testing"

	"jiffy/internal/core"
)

// FuzzTierObjectDecode feeds arbitrary bytes to the tier-object
// decoder. Decode must never panic, and any input it accepts must
// round-trip exactly through Encode/Decode — the persist tier is the
// last line of defence for demoted data, so the codec has to be
// total on garbage and faithful on valid objects.
func FuzzTierObjectDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("JTO1"))
	f.Add(Encode(Object{Block: 1, Gen: 1, Type: core.DSKV, Capacity: 64, NumSlots: 4, Chunk: 0, Snapshot: []byte("seed")}))
	f.Add(Encode(Object{Block: 1 << 40, Gen: ^uint64(0), Type: core.DSQueue, Capacity: 1 << 20, Snapshot: nil}))
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Decode(Encode(o))
		if err != nil {
			t.Fatalf("re-decode of accepted object failed: %v", err)
		}
		if re.Block != o.Block || re.Gen != o.Gen || re.Type != o.Type ||
			re.Capacity != o.Capacity || re.NumSlots != o.NumSlots ||
			re.Chunk != o.Chunk || !bytes.Equal(re.Snapshot, o.Snapshot) {
			t.Fatalf("round trip mismatch: %+v != %+v", re, o)
		}
	})
}
