package tier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"jiffy/internal/core"
)

// Object is a demoted block as stored in the persist tier: enough
// metadata to rebuild the partition on any server (the envelope) plus
// the partition snapshot itself. The envelope is versioned and
// checksummed so a half-written or corrupted persist entry is detected
// at decode time instead of resurrecting garbage into a chain.
type Object struct {
	Block    core.BlockID
	Gen      uint64 // tiering generation, fences stale objects
	Type     core.DSType
	Capacity int
	NumSlots int
	Chunk    int
	Snapshot []byte
}

// Wire layout (all integers big-endian):
//
//	magic   [4]byte "JTO1"
//	version u32     (currently 1)
//	block   u64
//	gen     u64
//	dsType  u8
//	cap     u32
//	slots   u32
//	chunk   u32
//	len     u32     snapshot length
//	snap    [len]byte
//	crc     u32     IEEE CRC-32 of everything above
const (
	objMagic   = "JTO1"
	objVersion = 1
	objHeader  = 4 + 4 + 8 + 8 + 1 + 4 + 4 + 4 + 4
	objTrailer = 4
)

// ErrBadObject reports a tier object that failed structural or
// checksum validation.
var ErrBadObject = errors.New("tier: bad tier object")

// Encode serialises the object into a fresh buffer.
func Encode(o Object) []byte {
	buf := make([]byte, objHeader+len(o.Snapshot)+objTrailer)
	copy(buf[0:4], objMagic)
	binary.BigEndian.PutUint32(buf[4:8], objVersion)
	binary.BigEndian.PutUint64(buf[8:16], uint64(o.Block))
	binary.BigEndian.PutUint64(buf[16:24], o.Gen)
	buf[24] = byte(o.Type)
	binary.BigEndian.PutUint32(buf[25:29], uint32(o.Capacity))
	binary.BigEndian.PutUint32(buf[29:33], uint32(o.NumSlots))
	binary.BigEndian.PutUint32(buf[33:37], uint32(o.Chunk))
	binary.BigEndian.PutUint32(buf[37:41], uint32(len(o.Snapshot)))
	copy(buf[objHeader:], o.Snapshot)
	crc := crc32.ChecksumIEEE(buf[:objHeader+len(o.Snapshot)])
	binary.BigEndian.PutUint32(buf[objHeader+len(o.Snapshot):], crc)
	return buf
}

// Decode parses and validates a tier object. The returned snapshot
// aliases data; callers that outlive data must copy it.
func Decode(data []byte) (Object, error) {
	var o Object
	if len(data) < objHeader+objTrailer {
		return o, fmt.Errorf("%w: %d bytes, need at least %d", ErrBadObject, len(data), objHeader+objTrailer)
	}
	if string(data[0:4]) != objMagic {
		return o, fmt.Errorf("%w: bad magic %q", ErrBadObject, data[0:4])
	}
	if v := binary.BigEndian.Uint32(data[4:8]); v != objVersion {
		return o, fmt.Errorf("%w: unsupported version %d", ErrBadObject, v)
	}
	snapLen := binary.BigEndian.Uint32(data[37:41])
	if uint64(len(data)) != uint64(objHeader)+uint64(snapLen)+objTrailer {
		return o, fmt.Errorf("%w: length %d does not match snapshot length %d",
			ErrBadObject, len(data), snapLen)
	}
	body := data[:objHeader+int(snapLen)]
	want := binary.BigEndian.Uint32(data[len(body):])
	if got := crc32.ChecksumIEEE(body); got != want {
		return o, fmt.Errorf("%w: checksum mismatch (got %#x want %#x)", ErrBadObject, got, want)
	}
	o.Block = core.BlockID(binary.BigEndian.Uint64(data[8:16]))
	o.Gen = binary.BigEndian.Uint64(data[16:24])
	o.Type = core.DSType(data[24])
	o.Capacity = int(binary.BigEndian.Uint32(data[25:29]))
	o.NumSlots = int(binary.BigEndian.Uint32(data[29:33]))
	o.Chunk = int(binary.BigEndian.Uint32(data[33:37]))
	o.Snapshot = data[objHeader : objHeader+int(snapLen)]
	return o, nil
}
