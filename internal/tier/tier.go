// Package tier implements the cold-block tiering policy: which
// resident blocks a memory server should demote to the persist tier,
// given per-block heat (last access and last promotion times) and a
// configurable memory watermark.
//
// The policy is a pure function (Plan) over an immutable snapshot of
// candidates, so it is trivially testable; the server owns the
// mechanics of demotion/rehydration and calls Plan from its scan
// worker. Two invariants define the policy (and are pinned by the
// property tests in this package):
//
//  1. No thrash: a block is never planned for demotion within Cooldown
//     of its promotion (creation or last rehydration), regardless of
//     memory pressure. Hysteresis wins over the watermark.
//  2. Bounded overshoot: after demoting the planned set, resident
//     bytes are at most the watermark — unless every surviving block
//     is inside its cooldown window (or pinned), in which case the
//     overshoot is whatever the cooldown protects. Because blocks are
//     bounded by the configured block size, the steady-state overshoot
//     is at most one max-block-size.
package tier

import (
	"sort"
	"time"

	"jiffy/internal/core"
)

// Policy is the demotion policy for one memory server.
type Policy struct {
	// WatermarkBytes is the resident-byte budget; above it the coldest
	// eligible blocks are demoted until the server is back under.
	// Zero disables pressure-driven demotion.
	WatermarkBytes int64
	// Cooldown is the anti-thrash window: blocks promoted (created or
	// rehydrated) less than Cooldown ago are never demoted.
	Cooldown time.Duration
	// IdleAfter demotes blocks untouched for this long even without
	// pressure (the scale-to-zero path). Zero disables idle demotion.
	IdleAfter time.Duration
}

// Candidate is one resident block as seen by the policy.
type Candidate struct {
	ID         core.BlockID
	Bytes      int64
	LastAccess time.Time
	PromotedAt time.Time
	// Pinned blocks (sealed, mid-repair, mid-repartition) are never
	// demoted.
	Pinned bool
}

// eligible reports whether the block may be demoted at all.
func (p Policy) eligible(now time.Time, c Candidate) bool {
	return !c.Pinned && now.Sub(c.PromotedAt) >= p.Cooldown
}

// Plan returns the IDs of blocks to demote, coldest first. The input
// slice is not modified. The plan is deterministic: ties on last
// access break by block ID.
func (p Policy) Plan(now time.Time, resident []Candidate) []core.BlockID {
	var residentBytes int64
	for _, c := range resident {
		residentBytes += c.Bytes
	}

	// Idle demotion: scale-to-zero for blocks nobody touches, applied
	// regardless of pressure.
	demote := make(map[core.BlockID]bool)
	var plan []core.BlockID
	if p.IdleAfter > 0 {
		for _, c := range resident {
			if p.eligible(now, c) && now.Sub(c.LastAccess) >= p.IdleAfter {
				demote[c.ID] = true
				plan = append(plan, c.ID)
				residentBytes -= c.Bytes
			}
		}
	}

	// Pressure demotion: coldest eligible blocks until under watermark.
	if p.WatermarkBytes > 0 && residentBytes > p.WatermarkBytes {
		victims := make([]Candidate, 0, len(resident))
		for _, c := range resident {
			if !demote[c.ID] && p.eligible(now, c) {
				victims = append(victims, c)
			}
		}
		sort.Slice(victims, func(i, j int) bool {
			if !victims[i].LastAccess.Equal(victims[j].LastAccess) {
				return victims[i].LastAccess.Before(victims[j].LastAccess)
			}
			return victims[i].ID < victims[j].ID
		})
		for _, c := range victims {
			if residentBytes <= p.WatermarkBytes {
				break
			}
			plan = append(plan, c.ID)
			residentBytes -= c.Bytes
		}
	}

	// Deterministic output order: idle victims were appended in input
	// order, pressure victims coldest-first; sort the union coldest
	// first by ID for a stable plan.
	sort.Slice(plan, func(i, j int) bool { return plan[i] < plan[j] })
	return plan
}
