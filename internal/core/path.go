package core

import (
	"fmt"
	"strings"
)

// PathSep separates components of a hierarchical address. A full block
// address looks like "T4.T6.B6_2" in the paper; we use '/'-separated
// paths rooted at the job: "jobID/T4/T6".
const PathSep = "/"

// Path is a hierarchical address prefix: the first component names the
// job, subsequent components name tasks (interior nodes of the job's
// DAG-shaped hierarchy). A Path never names a block; blocks are leaves
// managed by the controller under their owning prefix.
type Path string

// NewPath builds a Path from components, validating each one.
func NewPath(components ...string) (Path, error) {
	for _, c := range components {
		if err := ValidateComponent(c); err != nil {
			return "", err
		}
	}
	return Path(strings.Join(components, PathSep)), nil
}

// MustPath is NewPath that panics on invalid components; for literals
// in tests and examples.
func MustPath(components ...string) Path {
	p, err := NewPath(components...)
	if err != nil {
		panic(err)
	}
	return p
}

// ValidateComponent rejects empty components and components containing
// the separator.
func ValidateComponent(c string) error {
	if c == "" {
		return fmt.Errorf("core: empty path component")
	}
	if strings.Contains(c, PathSep) {
		return fmt.Errorf("core: path component %q contains %q", c, PathSep)
	}
	return nil
}

// Components splits the path into its components. The empty path yields
// a nil slice.
func (p Path) Components() []string {
	if p == "" {
		return nil
	}
	return strings.Split(string(p), PathSep)
}

// Job returns the job component (first element) of the path.
func (p Path) Job() JobID {
	c := p.Components()
	if len(c) == 0 {
		return ""
	}
	return JobID(c[0])
}

// Base returns the final component of the path.
func (p Path) Base() string {
	c := p.Components()
	if len(c) == 0 {
		return ""
	}
	return c[len(c)-1]
}

// Parent returns the path with the final component removed; the parent
// of a single-component path (a job root) is the empty path.
func (p Path) Parent() Path {
	i := strings.LastIndex(string(p), PathSep)
	if i < 0 {
		return ""
	}
	return p[:i]
}

// Child extends the path with one validated component.
func (p Path) Child(name string) (Path, error) {
	if err := ValidateComponent(name); err != nil {
		return "", err
	}
	if p == "" {
		return Path(name), nil
	}
	return p + Path(PathSep) + Path(name), nil
}

// MustChild is Child that panics on invalid input.
func (p Path) MustChild(name string) Path {
	c, err := p.Child(name)
	if err != nil {
		panic(err)
	}
	return c
}

// HasPrefix reports whether p is equal to or lies beneath prefix in the
// hierarchy, comparing whole components ("a/bc" is not under "a/b").
func (p Path) HasPrefix(prefix Path) bool {
	if prefix == "" {
		return true
	}
	if p == prefix {
		return true
	}
	return strings.HasPrefix(string(p), string(prefix)+PathSep)
}

// Depth returns the number of components.
func (p Path) Depth() int { return len(p.Components()) }

// Valid reports whether every component of the path is valid and the
// path is non-empty.
func (p Path) Valid() bool {
	comps := p.Components()
	if len(comps) == 0 {
		return false
	}
	for _, c := range comps {
		if ValidateComponent(c) != nil {
			return false
		}
	}
	return true
}
