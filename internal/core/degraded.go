package core

import (
	"fmt"
	"strings"
	"time"
)

// DegradedError is the client-side form of ErrServerDegraded: every
// replica that could serve the operation is behind an open circuit
// breaker (persistently slow or failing), so the client fails fast
// instead of queueing behind a gray-failed server. RetryAfter hints
// when the earliest breaker re-probes (its half-open deadline); callers
// should treat it like throttle backpressure. It crosses the wire as
// CodeServerDegraded with Error() as the diagnostic payload (see
// ErrOf), though in practice it is minted client-side.
type DegradedError struct {
	// Server is the degraded server the operation was routed to.
	Server string
	// RetryAfter estimates when the server's breaker transitions to
	// half-open and admits a probe. Zero means "unknown".
	RetryAfter time.Duration
}

// Error renders the stable wire form parsed back by parseDegraded.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("jiffy: server degraded: server=%s retry_after=%s", e.Server, e.RetryAfter)
}

// Unwrap ties the typed error to the ErrServerDegraded sentinel.
func (e *DegradedError) Unwrap() error { return ErrServerDegraded }

// parseDegraded reverses (*DegradedError).Error(); nil if msg is not
// in that form.
func parseDegraded(msg string) *DegradedError {
	rest, ok := strings.CutPrefix(msg, "jiffy: server degraded: server=")
	if !ok {
		return nil
	}
	server, after, ok := strings.Cut(rest, " retry_after=")
	if !ok {
		return nil
	}
	d, err := time.ParseDuration(after)
	if err != nil {
		return nil
	}
	return &DegradedError{Server: server, RetryAfter: d}
}
