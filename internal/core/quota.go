package core

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Quota is the per-tenant (or per-prefix) resource envelope enforced
// by admission control. The hierarchy stores quotas on its nodes:
// rate dimensions (ops/sec, bytes/sec) registered on a job root are
// pushed to every memory server and enforced on the data-plane hot
// path by token buckets; the memory dimension is enforced by the
// controller at block-allocation time against the node's subtree.
// Zero in any dimension means unlimited for that dimension.
type Quota struct {
	// OpsPerSec bounds the tenant's data-plane operation rate.
	OpsPerSec float64
	// BytesPerSec bounds the tenant's data-plane ingress byte rate
	// (request argument bytes).
	BytesPerSec float64
	// MemoryBytes bounds the physical far-memory footprint (all chain
	// replicas counted) of the prefix subtree the quota is set on.
	MemoryBytes int64
	// Weight is the tenant's share of server capacity under
	// deficit-round-robin scheduling when admission queues form
	// (0 means weight 1).
	Weight int
}

// IsZero reports whether no dimension is set.
func (q Quota) IsZero() bool {
	return q.OpsPerSec == 0 && q.BytesPerSec == 0 && q.MemoryBytes == 0 && q.Weight == 0
}

// ThrottleError is the server-side form of ErrQuotaExceeded: the op
// was refused by admission control and the client should wait about
// RetryAfter before retrying. It crosses the wire as CodeQuotaExceeded
// with Error() as the diagnostic payload (see ErrOf).
type ThrottleError struct {
	// Tenant is the job whose quota was exceeded.
	Tenant string
	// RetryAfter estimates when the tenant's token buckets will admit
	// an op of this size again. Zero means "immediately" (the refusal
	// came from queue pressure, not rate).
	RetryAfter time.Duration
}

// Error renders the stable wire form parsed back by parseThrottle.
func (e *ThrottleError) Error() string {
	return fmt.Sprintf("jiffy: quota exceeded: tenant=%s retry_after=%s", e.Tenant, e.RetryAfter)
}

// Unwrap ties the typed error to the ErrQuotaExceeded sentinel.
func (e *ThrottleError) Unwrap() error { return ErrQuotaExceeded }

// parseThrottle reverses (*ThrottleError).Error(); nil if msg is not
// in that form.
func parseThrottle(msg string) *ThrottleError {
	rest, ok := strings.CutPrefix(msg, "jiffy: quota exceeded: tenant=")
	if !ok {
		return nil
	}
	tenant, after, ok := strings.Cut(rest, " retry_after=")
	if !ok {
		return nil
	}
	d, err := time.ParseDuration(after)
	if err != nil {
		return nil
	}
	return &ThrottleError{Tenant: tenant, RetryAfter: d}
}

// RetryAfterOf extracts the backpressure hint from a throttle or
// degraded-server error chain; zero when err carries none.
func RetryAfterOf(err error) time.Duration {
	var te *ThrottleError
	if errors.As(err, &te) {
		return te.RetryAfter
	}
	var de *DegradedError
	if errors.As(err, &de) {
		return de.RetryAfter
	}
	return 0
}
