package core

import "errors"

// Sentinel errors shared across the control and data planes. RPC
// boundaries transport these by stable code (see ErrorCode) so that
// errors.Is works on both sides of a connection.
var (
	// ErrNotFound reports a missing key, path, block or job.
	ErrNotFound = errors.New("jiffy: not found")
	// ErrExists reports an attempt to create something that already exists.
	ErrExists = errors.New("jiffy: already exists")
	// ErrNoCapacity reports that the free block list is empty and the
	// allocation could not be satisfied from memory.
	ErrNoCapacity = errors.New("jiffy: no free blocks")
	// ErrBlockFull reports that a block cannot accept the write; for
	// queues and files the client should follow the redirect to the
	// next block, for the KV store the server splits the block.
	ErrBlockFull = errors.New("jiffy: block full")
	// ErrEmpty reports a dequeue from an empty queue.
	ErrEmpty = errors.New("jiffy: empty")
	// ErrStaleEpoch reports that the client's cached partition metadata
	// is older than the server's; the client must refresh its map from
	// the controller and retry.
	ErrStaleEpoch = errors.New("jiffy: stale partition metadata")
	// ErrLeaseExpired reports an operation on a prefix whose lease has
	// expired and whose resources were reclaimed.
	ErrLeaseExpired = errors.New("jiffy: lease expired")
	// ErrPermission reports an access-control violation on a prefix.
	ErrPermission = errors.New("jiffy: permission denied")
	// ErrWrongType reports an operation that does not apply to the data
	// structure stored at the prefix.
	ErrWrongType = errors.New("jiffy: wrong data structure type")
	// ErrClosed reports use of a closed client, server or handle.
	ErrClosed = errors.New("jiffy: closed")
	// ErrTimeout reports an operation that exceeded its deadline.
	ErrTimeout = errors.New("jiffy: timed out")
	// ErrTooLarge reports a value that exceeds a size bound (e.g. an
	// item larger than a block, or a DynamoDB-model object over 128KB).
	ErrTooLarge = errors.New("jiffy: object too large")
	// ErrRedirect is returned internally with a payload naming the
	// block the client should retry against (queue head/tail moved).
	ErrRedirect = errors.New("jiffy: redirected")
	// ErrBlockLost reports that a block's only replica died with no
	// flushed copy in the persist tier; its data is unrecoverable and
	// clients must fail fast instead of retrying.
	ErrBlockLost = errors.New("jiffy: block lost")
	// ErrQuotaExceeded reports that an operation was refused by
	// admission control: the tenant is over one of its registered
	// quotas (ops/sec, bytes/sec, or memory). The server-side form is a
	// *ThrottleError carrying a retry-after hint; clients honor it as
	// backpressure before retrying.
	ErrQuotaExceeded = errors.New("jiffy: quota exceeded")
	// ErrNotLeader reports a control-plane request sent to a standby
	// controller in a replicated group. The server-side form is a
	// *NotLeaderError carrying the current leader's address so clients
	// and servers re-home instead of retrying against the standby.
	ErrNotLeader = errors.New("jiffy: not leader")
	// ErrServerDegraded reports that an operation could not be served
	// because every eligible replica sits behind an open per-server
	// circuit breaker: the servers are reachable but persistently slow
	// or failing (gray failure). The typed form is a *DegradedError
	// carrying a retry-after hint aligned with the breaker's half-open
	// probe deadline.
	ErrServerDegraded = errors.New("jiffy: server degraded")
)

// ErrorCode is the wire representation of the sentinel errors.
type ErrorCode uint8

// Wire codes. Zero means "no error"; CodeOther carries a message string.
const (
	CodeOK ErrorCode = iota
	CodeNotFound
	CodeExists
	CodeNoCapacity
	CodeBlockFull
	CodeEmpty
	CodeStaleEpoch
	CodeLeaseExpired
	CodePermission
	CodeWrongType
	CodeClosed
	CodeTimeout
	CodeTooLarge
	CodeRedirect
	CodeBlockLost
	CodeQuotaExceeded
	CodeNotLeader
	CodeServerDegraded
	CodeOther
)

var codeToErr = map[ErrorCode]error{
	CodeNotFound:       ErrNotFound,
	CodeExists:         ErrExists,
	CodeNoCapacity:     ErrNoCapacity,
	CodeBlockFull:      ErrBlockFull,
	CodeEmpty:          ErrEmpty,
	CodeStaleEpoch:     ErrStaleEpoch,
	CodeLeaseExpired:   ErrLeaseExpired,
	CodePermission:     ErrPermission,
	CodeWrongType:      ErrWrongType,
	CodeClosed:         ErrClosed,
	CodeTimeout:        ErrTimeout,
	CodeTooLarge:       ErrTooLarge,
	CodeRedirect:       ErrRedirect,
	CodeBlockLost:      ErrBlockLost,
	CodeQuotaExceeded:  ErrQuotaExceeded,
	CodeNotLeader:      ErrNotLeader,
	CodeServerDegraded: ErrServerDegraded,
}

// CodeOf maps an error to its wire code. Wrapped sentinels are
// recognized via errors.Is; anything else maps to CodeOther.
func CodeOf(err error) ErrorCode {
	if err == nil {
		return CodeOK
	}
	for code, sentinel := range codeToErr {
		if errors.Is(err, sentinel) {
			return code
		}
	}
	return CodeOther
}

// ErrOf maps a wire code back to its sentinel error. CodeOther yields a
// generic error carrying msg; CodeOK yields nil. CodeQuotaExceeded
// reconstructs the typed *ThrottleError from the diagnostic payload so
// the retry-after hint survives the wire; CodeNotLeader likewise
// reconstructs *NotLeaderError so the redirect hint survives.
func ErrOf(code ErrorCode, msg string) error {
	if code == CodeOK {
		return nil
	}
	if code == CodeQuotaExceeded {
		if te := parseThrottle(msg); te != nil {
			return te
		}
		return ErrQuotaExceeded
	}
	if code == CodeNotLeader {
		if nl := parseNotLeader(msg); nl != nil {
			return nl
		}
		return ErrNotLeader
	}
	if code == CodeServerDegraded {
		if de := parseDegraded(msg); de != nil {
			return de
		}
		return ErrServerDegraded
	}
	if err, ok := codeToErr[code]; ok {
		return err
	}
	if msg == "" {
		msg = "jiffy: remote error"
	}
	return errors.New(msg)
}
