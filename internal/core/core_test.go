package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestPathComponents(t *testing.T) {
	p := MustPath("job1", "T4", "T6")
	got := p.Components()
	want := []string{"job1", "T4", "T6"}
	if len(got) != len(want) {
		t.Fatalf("components = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("component %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestPathJobBaseParent(t *testing.T) {
	p := MustPath("job1", "T4", "T6")
	if p.Job() != "job1" {
		t.Errorf("Job() = %q, want job1", p.Job())
	}
	if p.Base() != "T6" {
		t.Errorf("Base() = %q, want T6", p.Base())
	}
	if p.Parent() != MustPath("job1", "T4") {
		t.Errorf("Parent() = %q", p.Parent())
	}
	if MustPath("job1").Parent() != "" {
		t.Errorf("root parent = %q, want empty", MustPath("job1").Parent())
	}
}

func TestPathEmpty(t *testing.T) {
	var p Path
	if p.Components() != nil {
		t.Errorf("empty path components = %v, want nil", p.Components())
	}
	if p.Job() != "" || p.Base() != "" {
		t.Errorf("empty path job/base should be empty")
	}
	if p.Valid() {
		t.Error("empty path should not be valid")
	}
}

func TestPathChild(t *testing.T) {
	p := MustPath("job1")
	c, err := p.Child("T1")
	if err != nil {
		t.Fatal(err)
	}
	if c != "job1/T1" {
		t.Errorf("child = %q", c)
	}
	if _, err := p.Child("a/b"); err == nil {
		t.Error("child with separator should fail")
	}
	if _, err := p.Child(""); err == nil {
		t.Error("empty child should fail")
	}
	var empty Path
	c2, err := empty.Child("root")
	if err != nil || c2 != "root" {
		t.Errorf("empty.Child = %q, %v", c2, err)
	}
}

func TestPathHasPrefix(t *testing.T) {
	cases := []struct {
		p, prefix Path
		want      bool
	}{
		{"j/a/b", "j/a", true},
		{"j/a/b", "j/a/b", true},
		{"j/a/b", "j", true},
		{"j/ab", "j/a", false}, // component boundary respected
		{"j/a", "j/a/b", false},
		{"j/a", "", true},
	}
	for _, c := range cases {
		if got := c.p.HasPrefix(c.prefix); got != c.want {
			t.Errorf("%q.HasPrefix(%q) = %v, want %v", c.p, c.prefix, got, c.want)
		}
	}
}

func TestPathDepthValid(t *testing.T) {
	if d := MustPath("a", "b", "c").Depth(); d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
	if !MustPath("a", "b").Valid() {
		t.Error("valid path reported invalid")
	}
	if Path("a//b").Valid() {
		t.Error("path with empty component reported valid")
	}
}

func TestPathRoundTrip(t *testing.T) {
	// Property: joining components and splitting them is the identity
	// for separator-free non-empty components.
	f := func(raw []string) bool {
		comps := make([]string, 0, len(raw))
		for _, r := range raw {
			c := strings.ReplaceAll(r, PathSep, "_")
			if c == "" {
				c = "x"
			}
			comps = append(comps, c)
		}
		if len(comps) == 0 {
			return true
		}
		p, err := NewPath(comps...)
		if err != nil {
			return false
		}
		got := p.Components()
		if len(got) != len(comps) {
			return false
		}
		for i := range comps {
			if got[i] != comps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseDSType(t *testing.T) {
	for _, typ := range []DSType{DSFile, DSQueue, DSKV} {
		got, err := ParseDSType(typ.String())
		if err != nil || got != typ {
			t.Errorf("ParseDSType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	if _, err := ParseDSType("btree"); err == nil {
		t.Error("unknown type should fail")
	}
}

func TestParseOpType(t *testing.T) {
	for _, op := range []OpType{OpPut, OpGet, OpEnqueue, OpDequeue, OpFileWrite} {
		got, err := ParseOpType(op.String())
		if err != nil || got != op {
			t.Errorf("ParseOpType(%q) = %v, %v", op.String(), got, err)
		}
	}
	if _, err := ParseOpType("scan"); err == nil {
		t.Error("unknown op should fail")
	}
}

func TestOpIsMutation(t *testing.T) {
	muts := []OpType{OpFileWrite, OpEnqueue, OpDequeue, OpPut, OpDelete, OpUpdate, OpImport}
	for _, m := range muts {
		if !m.IsMutation() {
			t.Errorf("%v should be a mutation", m)
		}
	}
	for _, r := range []OpType{OpGet, OpFileRead, OpExists, OpExport, OpUsage} {
		if r.IsMutation() {
			t.Errorf("%v should not be a mutation", r)
		}
	}
}

func TestErrorCodeRoundTrip(t *testing.T) {
	sentinels := []error{
		ErrNotFound, ErrExists, ErrNoCapacity, ErrBlockFull, ErrEmpty,
		ErrStaleEpoch, ErrLeaseExpired, ErrPermission, ErrWrongType,
		ErrClosed, ErrTimeout, ErrTooLarge, ErrRedirect,
	}
	for _, s := range sentinels {
		code := CodeOf(s)
		if code == CodeOK || code == CodeOther {
			t.Errorf("CodeOf(%v) = %v", s, code)
		}
		back := ErrOf(code, "")
		if !errors.Is(back, s) {
			t.Errorf("ErrOf(CodeOf(%v)) = %v", s, back)
		}
	}
}

func TestErrorCodeWrapped(t *testing.T) {
	wrapped := fmt.Errorf("put key %q: %w", "k", ErrNotFound)
	if CodeOf(wrapped) != CodeNotFound {
		t.Errorf("wrapped sentinel not recognized: %v", CodeOf(wrapped))
	}
}

func TestErrorCodeOther(t *testing.T) {
	if CodeOf(errors.New("boom")) != CodeOther {
		t.Error("arbitrary error should map to CodeOther")
	}
	err := ErrOf(CodeOther, "boom")
	if err == nil || err.Error() != "boom" {
		t.Errorf("ErrOf(CodeOther) = %v", err)
	}
	if ErrOf(CodeOK, "") != nil {
		t.Error("CodeOK should map to nil")
	}
	if CodeOf(nil) != CodeOK {
		t.Error("nil should map to CodeOK")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := TestConfig().Validate(); err != nil {
		t.Errorf("test config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.BlockSize = 0 },
		func(c *Config) { c.LeaseDuration = 0 },
		func(c *Config) { c.LeaseScanPeriod = 0 },
		func(c *Config) { c.HighThreshold = 0 },
		func(c *Config) { c.HighThreshold = 1.5 },
		func(c *Config) { c.LowThreshold = 0.99 }, // >= high
		func(c *Config) { c.NumHashSlots = 100 },  // not a power of two
		func(c *Config) { c.NumHashSlots = 0 },
		func(c *Config) { c.ChainLength = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestBlockInfoString(t *testing.T) {
	b := BlockInfo{ID: 7, Server: "10.0.0.1:9090"}
	if b.String() != "B7@10.0.0.1:9090" {
		t.Errorf("String() = %q", b.String())
	}
}

func TestReplicaChain(t *testing.T) {
	c := ReplicaChain{{ID: 1, Server: "a"}, {ID: 2, Server: "b"}, {ID: 3, Server: "c"}}
	if c.Head().ID != 1 {
		t.Errorf("head = %v", c.Head())
	}
	if c.Tail().ID != 3 {
		t.Errorf("tail = %v", c.Tail())
	}
}
