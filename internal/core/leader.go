package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// NotLeaderError is the server-side form of ErrNotLeader: the request
// reached a standby controller in a replicated group. Leader names the
// address of the controller believed to hold the lease (empty when the
// standby does not know yet) and Gen its leadership generation, so
// clients can discard stale redirects. It crosses the wire as
// CodeNotLeader with Error() as the diagnostic payload (see ErrOf).
type NotLeaderError struct {
	// Leader is the address of the current leader, if known.
	Leader string
	// Gen is the leadership generation the redirecting controller has
	// observed. A redirect with a lower generation than one already
	// acted on is stale.
	Gen uint64
}

// Error renders the stable wire form parsed back by parseNotLeader.
func (e *NotLeaderError) Error() string {
	return fmt.Sprintf("jiffy: not leader: leader=%s gen=%d", e.Leader, e.Gen)
}

// Unwrap ties the typed error to the ErrNotLeader sentinel.
func (e *NotLeaderError) Unwrap() error { return ErrNotLeader }

// parseNotLeader reverses (*NotLeaderError).Error(); nil if msg is not
// in that form.
func parseNotLeader(msg string) *NotLeaderError {
	rest, ok := strings.CutPrefix(msg, "jiffy: not leader: leader=")
	if !ok {
		return nil
	}
	leader, genStr, ok := strings.Cut(rest, " gen=")
	if !ok {
		return nil
	}
	gen, err := strconv.ParseUint(genStr, 10, 64)
	if err != nil {
		return nil
	}
	return &NotLeaderError{Leader: leader, Gen: gen}
}

// LeaderHintOf extracts the redirect hint from a not-leader error
// chain; empty when err carries none.
func LeaderHintOf(err error) (string, uint64) {
	var nl *NotLeaderError
	if errors.As(err, &nl) {
		return nl.Leader, nl.Gen
	}
	return "", 0
}
