package core

import (
	"fmt"
	"time"
)

// Size constants.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// Paper defaults (§6 "Experimental setup"): 128MB blocks, 1s leases,
// 5%/95% repartition thresholds, 1024 hash slots for the KV store.
const (
	DefaultBlockSize       = 128 * MB
	DefaultLeaseDuration   = 1 * time.Second
	DefaultHighThreshold   = 0.95
	DefaultLowThreshold    = 0.05
	DefaultNumHashSlots    = 1024
	DefaultLeaseScanPeriod = 250 * time.Millisecond
	DefaultRPCTimeout      = 30 * time.Second
	// Failure-detection defaults: servers beat once a second and are
	// declared dead after five missed beats.
	DefaultHeartbeatInterval = 1 * time.Second
	DefaultSuspicionWindow   = 5 * time.Second
	// DefaultQoSMaxWait is the admission-queue wait bound: long enough
	// to ride out transient contention, short enough that throttled
	// tenants learn about backpressure quickly.
	DefaultQoSMaxWait = 2 * time.Millisecond
	// Tiering defaults: scan once a second and refuse to re-demote a
	// block within ten seconds of its promotion (anti-thrash
	// hysteresis). Tiering itself stays off until a watermark or idle
	// window is configured.
	DefaultTierScanPeriod = 1 * time.Second
	DefaultTierCooldown   = 10 * time.Second
	// Gray-failure defaults: a replication forward that takes more than
	// three consecutive stalls over the threshold is degraded evidence,
	// and a probated server needs two clean probes to rejoin. Fail-slow
	// detection itself stays off until SlowHopThreshold is set.
	DefaultSlowHopStreak           = 3
	DefaultProbationRecoveryProbes = 2
)

// Config carries the tunables evaluated in the paper's sensitivity
// analysis (§6.6) plus deployment knobs. The zero value is not usable;
// call DefaultConfig and override fields.
type Config struct {
	// BlockSize is the fixed size of every memory block in bytes
	// (Fig. 14a sweeps 32MB–512MB; experiments in this repo scale it
	// down so traces replay in seconds).
	BlockSize int
	// LeaseDuration is the default lease period for address prefixes
	// (Fig. 14b sweeps 0.25s–64s).
	LeaseDuration time.Duration
	// LeaseScanPeriod is how often the expiry worker walks the address
	// hierarchies looking for expired prefixes.
	LeaseScanPeriod time.Duration
	// HighThreshold is the block-usage fraction above which the server
	// signals overload and the controller allocates a new block
	// (Fig. 14c sweeps 60%–99%).
	HighThreshold float64
	// LowThreshold is the usage fraction below which a block becomes a
	// merge candidate and may be reclaimed.
	LowThreshold float64
	// NumHashSlots is the size of the KV store's hash-slot space; slots
	// are the unit of KV repartitioning and each slot lives entirely in
	// one block (§5.3).
	NumHashSlots int
	// ChainLength is the replication chain length for blocks; 1 (the
	// default) disables replication.
	ChainLength int
	// RPCTimeout bounds every RPC without an explicit context deadline,
	// so a peer that stops reading fails the call instead of hanging it.
	// Zero disables the bound (calls wait forever); negative is invalid.
	RPCTimeout time.Duration
	// HeartbeatInterval is how often a memory server sends a liveness
	// beat to the controller, and how often the controller's failure
	// detector rechecks suspicion. Zero disables heartbeats.
	HeartbeatInterval time.Duration
	// SuspicionWindow is how long a server may go without a heartbeat
	// before the controller declares it dead and repairs its chains.
	// Must be at least HeartbeatInterval when heartbeats are enabled.
	SuspicionWindow time.Duration
	// QoSConcurrency bounds concurrent data-plane ops per memory
	// server; when the bound is hit, further ops queue per tenant and
	// are granted in deficit-round-robin order weighted by quota. Zero
	// disables capacity scheduling (token buckets still enforce
	// per-tenant rates for tenants with registered quotas).
	QoSConcurrency int
	// QoSMaxWait bounds (in wall time) how long an op may sit in the
	// admission queue before it is throttled with ErrQuotaExceeded
	// instead of served. Zero means the DefaultQoSMaxWait.
	QoSMaxWait time.Duration
	// MemoryWatermarkBytes is the per-server resident-memory budget for
	// block payloads. When resident bytes exceed it, the tiering worker
	// demotes the coldest blocks to the persist tier until the server is
	// back under the watermark. Zero disables pressure-driven demotion.
	MemoryWatermarkBytes int64
	// TierCooldown is the anti-thrash hysteresis window: a block is
	// never demoted within TierCooldown of its creation or of its last
	// rehydration, no matter how much pressure the server is under.
	TierCooldown time.Duration
	// TierIdleAfter demotes any block untouched for this long even
	// without memory pressure — the scale-to-zero path for idle
	// tenants. Zero disables idle demotion.
	TierIdleAfter time.Duration
	// TierScanPeriod is how often the tiering worker re-evaluates the
	// demotion policy. Zero disables the background worker; tests then
	// drive scans deterministically via Server.TierTickNow.
	TierScanPeriod time.Duration
	// SlowHopThreshold is the replication-forward latency above which a
	// chain successor counts as stalled (gray-failure evidence). A head
	// or mid-chain member whose successor exceeds it SlowHopStreak times
	// in a row files a Degraded failure report, and the controller uses
	// the same bound when probing probated servers for recovery. Zero
	// disables fail-slow detection.
	SlowHopThreshold time.Duration
	// SlowHopStreak is how many consecutive stalled forwards it takes
	// before a successor is reported as degraded. Zero means
	// DefaultSlowHopStreak.
	SlowHopStreak int
	// ProbationRecoveryProbes is how many consecutive healthy controller
	// probes a probated server must pass before it is restored to full
	// membership. Zero means DefaultProbationRecoveryProbes.
	ProbationRecoveryProbes int
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{
		BlockSize:       DefaultBlockSize,
		LeaseDuration:   DefaultLeaseDuration,
		LeaseScanPeriod: DefaultLeaseScanPeriod,
		HighThreshold:   DefaultHighThreshold,
		LowThreshold:    DefaultLowThreshold,
		NumHashSlots:    DefaultNumHashSlots,
		ChainLength:     1,
		RPCTimeout:      DefaultRPCTimeout,

		HeartbeatInterval: DefaultHeartbeatInterval,
		SuspicionWindow:   DefaultSuspicionWindow,

		TierScanPeriod: DefaultTierScanPeriod,
		TierCooldown:   DefaultTierCooldown,
	}
}

// TestConfig returns a configuration scaled down for fast tests and
// laptop-scale experiments: small blocks, short leases, frequent scans.
func TestConfig() Config {
	c := DefaultConfig()
	c.BlockSize = 64 * KB
	c.LeaseDuration = 200 * time.Millisecond
	c.LeaseScanPeriod = 20 * time.Millisecond
	c.NumHashSlots = 64
	c.RPCTimeout = 10 * time.Second
	// Heartbeats stay off in tests by default: wall-clock suspicion
	// windows short enough to matter are flaky under -race, so recovery
	// tests opt in explicitly and drive detection via a virtual clock.
	c.HeartbeatInterval = 0
	c.SuspicionWindow = 0
	return c
}

// Validate checks invariants between the fields.
func (c Config) Validate() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("core: block size must be positive, got %d", c.BlockSize)
	}
	if c.LeaseDuration <= 0 {
		return fmt.Errorf("core: lease duration must be positive, got %v", c.LeaseDuration)
	}
	if c.LeaseScanPeriod <= 0 {
		return fmt.Errorf("core: lease scan period must be positive, got %v", c.LeaseScanPeriod)
	}
	if c.HighThreshold <= 0 || c.HighThreshold > 1 {
		return fmt.Errorf("core: high threshold must be in (0,1], got %v", c.HighThreshold)
	}
	if c.LowThreshold < 0 || c.LowThreshold >= c.HighThreshold {
		return fmt.Errorf("core: low threshold must be in [0,high), got %v", c.LowThreshold)
	}
	if c.NumHashSlots <= 0 || c.NumHashSlots&(c.NumHashSlots-1) != 0 {
		return fmt.Errorf("core: hash slots must be a positive power of two, got %d", c.NumHashSlots)
	}
	if c.ChainLength < 1 {
		return fmt.Errorf("core: chain length must be >= 1, got %d", c.ChainLength)
	}
	if c.RPCTimeout < 0 {
		return fmt.Errorf("core: rpc timeout must be >= 0, got %v", c.RPCTimeout)
	}
	if c.HeartbeatInterval < 0 {
		return fmt.Errorf("core: heartbeat interval must be >= 0, got %v", c.HeartbeatInterval)
	}
	if c.HeartbeatInterval > 0 && c.SuspicionWindow < c.HeartbeatInterval {
		return fmt.Errorf("core: suspicion window %v must be >= heartbeat interval %v",
			c.SuspicionWindow, c.HeartbeatInterval)
	}
	if c.QoSConcurrency < 0 {
		return fmt.Errorf("core: qos concurrency must be >= 0, got %d", c.QoSConcurrency)
	}
	if c.QoSMaxWait < 0 {
		return fmt.Errorf("core: qos max wait must be >= 0, got %v", c.QoSMaxWait)
	}
	if c.MemoryWatermarkBytes < 0 {
		return fmt.Errorf("core: memory watermark must be >= 0, got %d", c.MemoryWatermarkBytes)
	}
	if c.TierCooldown < 0 {
		return fmt.Errorf("core: tier cooldown must be >= 0, got %v", c.TierCooldown)
	}
	if c.TierIdleAfter < 0 {
		return fmt.Errorf("core: tier idle window must be >= 0, got %v", c.TierIdleAfter)
	}
	if c.TierScanPeriod < 0 {
		return fmt.Errorf("core: tier scan period must be >= 0, got %v", c.TierScanPeriod)
	}
	if c.SlowHopThreshold < 0 {
		return fmt.Errorf("core: slow hop threshold must be >= 0, got %v", c.SlowHopThreshold)
	}
	if c.SlowHopStreak < 0 {
		return fmt.Errorf("core: slow hop streak must be >= 0, got %d", c.SlowHopStreak)
	}
	if c.ProbationRecoveryProbes < 0 {
		return fmt.Errorf("core: probation recovery probes must be >= 0, got %d", c.ProbationRecoveryProbes)
	}
	return nil
}
