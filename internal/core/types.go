// Package core defines the fundamental types shared by every Jiffy
// subsystem: block identifiers, address paths, data-structure kinds,
// configuration defaults and sentinel errors.
//
// Jiffy (EuroSys '22) partitions far-memory capacity into fixed-size
// blocks and allocates them to address prefixes organized in a per-job
// hierarchy that mirrors the job's execution DAG. The types here are the
// vocabulary for that design; the mechanisms live in sibling packages.
package core

import (
	"fmt"
	"strings"
)

// BlockID uniquely identifies a memory block across the whole cluster.
// IDs are assigned by the controller when a memory server registers its
// capacity and are never reused within a controller's lifetime.
type BlockID uint64

// String renders the block ID in the canonical "B<n>" form used in logs
// and in the paper's figures (e.g. B6_2).
func (b BlockID) String() string { return fmt.Sprintf("B%d", b) }

// JobID uniquely identifies a registered job. Jobs own address
// hierarchies; all prefixes created by a job live under its root.
type JobID string

// Epoch versions a data structure's partition metadata. Every scaling
// event (block added or removed) increments the epoch; clients embed the
// epoch they cached in data-plane requests and refresh their partition
// map from the controller when the server reports a newer epoch.
type Epoch uint64

// DSType enumerates Jiffy's built-in data structures (§5 of the paper).
type DSType uint8

const (
	// DSNone marks an address prefix with no data structure attached
	// (an interior node of the hierarchy).
	DSNone DSType = iota
	// DSFile is the append-only file: a sequence of blocks, each owning
	// a fixed offset range (§5.1).
	DSFile
	// DSQueue is the FIFO queue: a linked list of blocks with enqueue
	// at the tail and dequeue at the head (§5.2).
	DSQueue
	// DSKV is the key-value store: 2^k hash slots sharded across blocks,
	// cuckoo hashing within a block (§5.3).
	DSKV
)

// String returns the lowercase name used in the API and CLI.
func (t DSType) String() string {
	switch t {
	case DSNone:
		return "none"
	case DSFile:
		return "file"
	case DSQueue:
		return "queue"
	case DSKV:
		return "kv"
	default:
		return fmt.Sprintf("dstype(%d)", uint8(t))
	}
}

// ParseDSType maps a name accepted by the CLI/API back to a DSType.
func ParseDSType(s string) (DSType, error) {
	switch strings.ToLower(s) {
	case "none", "":
		return DSNone, nil
	case "file":
		return DSFile, nil
	case "queue", "fifo", "fifoqueue":
		return DSQueue, nil
	case "kv", "kvstore", "hashtable":
		return DSKV, nil
	}
	return DSNone, fmt.Errorf("core: unknown data structure type %q", s)
}

// OpType enumerates the data-plane operations a block partition
// understands. The set is the union across the three built-in
// structures; each partition rejects ops that do not apply to it.
type OpType uint8

const (
	OpNop OpType = iota
	// File ops.
	OpFileWrite  // args: offsetInBlock, data        -> bytesWritten
	OpFileRead   // args: offsetInBlock, length      -> data
	OpFileAppend // args: data                       -> offsetInBlock (atomic)
	// Queue ops.
	OpEnqueue // args: item                          -> ok / redirect
	OpDequeue // args: -                             -> item / redirect / empty
	// KV ops.
	OpPut    // args: key, value                     -> ok
	OpGet    // args: key                            -> value
	OpDelete // args: key                            -> ok
	OpExists // args: key                            -> ok / not found
	OpUpdate // args: key, value                     -> previous value
	// Maintenance ops used by repartitioning, flush and replication.
	OpExport // args: selector                       -> opaque snapshot
	OpImport // args: opaque snapshot                -> ok
	OpUsage  // args: -                              -> bytes used
	// OpQueueSetNext links a queue segment to its successor and seals
	// it. It is modeled as a data-plane mutation so that, on replicated
	// queues, the seal flows through the same sequenced propagation
	// stream as enqueues — a replica can never seal ahead of an
	// in-flight enqueue that preceded the seal at the head.
	OpQueueSetNext // args: redirect payload          -> ok
	// OpQueuePeek reads the head segment's oldest pending item without
	// consuming it (non-mutating; follows the same redirect chain as
	// dequeues).
	OpQueuePeek // args: -                             -> item / redirect / empty
)

// String names the op; used by the subscription/notification machinery
// where clients subscribe to operations by name ("put", "enqueue", ...).
func (o OpType) String() string {
	switch o {
	case OpNop:
		return "nop"
	case OpFileWrite:
		return "write"
	case OpFileRead:
		return "read"
	case OpFileAppend:
		return "append"
	case OpEnqueue:
		return "enqueue"
	case OpDequeue:
		return "dequeue"
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpExists:
		return "exists"
	case OpUpdate:
		return "update"
	case OpExport:
		return "export"
	case OpImport:
		return "import"
	case OpUsage:
		return "usage"
	case OpQueueSetNext:
		return "setnext"
	case OpQueuePeek:
		return "peek"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOpType resolves an operation name used in subscriptions.
func ParseOpType(s string) (OpType, error) {
	for _, o := range []OpType{
		OpFileWrite, OpFileRead, OpFileAppend, OpEnqueue, OpDequeue,
		OpQueuePeek, OpPut, OpGet, OpDelete, OpExists, OpUpdate,
	} {
		if o.String() == strings.ToLower(s) {
			return o, nil
		}
	}
	return OpNop, fmt.Errorf("core: unknown operation %q", s)
}

// IsMutation reports whether the op modifies partition state. Mutations
// trigger usage re-evaluation (and thus possibly repartitioning) and are
// the ops forwarded through replication chains.
func (o OpType) IsMutation() bool {
	switch o {
	case OpFileWrite, OpFileAppend, OpEnqueue, OpDequeue, OpPut, OpDelete, OpUpdate, OpImport,
		OpQueueSetNext:
		return true
	}
	return false
}

// BlockInfo locates a block in the data plane.
type BlockInfo struct {
	ID BlockID
	// Server is the data-plane address ("host:port" for TCP transports,
	// an endpoint name for the in-process transport).
	Server string
}

// String renders "B7@host:port".
func (b BlockInfo) String() string { return fmt.Sprintf("%s@%s", b.ID, b.Server) }

// ReplicaChain is the ordered list of replicas for a block under chain
// replication (§4.2.2): writes enter at the head, reads are served at
// the tail. A chain of length 1 is the unreplicated common case.
type ReplicaChain []BlockInfo

// Head returns the chain head (write entry point).
func (c ReplicaChain) Head() BlockInfo { return c[0] }

// Tail returns the chain tail (read serving point).
func (c ReplicaChain) Tail() BlockInfo { return c[len(c)-1] }
