package controller_test

import (
	"context"
	"testing"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/clock"
	"jiffy/internal/core"
	"jiffy/internal/proto"
)

// TestProbationLifecycle walks gray-failure probation end to end on a
// single controller: a Degraded failure report against a reachable
// server places it on probation (not death — no chain splice, no
// membership change), the stats surface it, and the recovery prober
// lifts the probation only after the configured number of consecutive
// clean probes.
func TestProbationLifecycle(t *testing.T) {
	vclock := clock.NewVirtual(time.Unix(0, 0))
	ctrl, srvs := recoveryCtrl(t, vclock, 3, 16, 16, 16)
	slow := srvs[2].Addr()

	epochBefore := ctrl.MembershipEpoch()
	if err := ctrl.ReportFailure(proto.ReportFailureReq{
		Reporter: srvs[0].Addr(), Server: slow, Degraded: true,
	}); err != nil {
		t.Fatal(err)
	}
	if !ctrl.ServerProbated(slow) {
		t.Fatal("degraded report against a live server did not probate it")
	}
	if ctrl.ServerDead(slow) {
		t.Fatal("degraded report killed a live server")
	}
	if got := ctrl.MembershipEpoch(); got != epochBefore {
		t.Fatalf("probation changed the membership epoch: %d -> %d", epochBefore, got)
	}
	stats := ctrl.Stats()
	if len(stats.DegradedServers) != 1 || stats.DegradedServers[0] != slow {
		t.Fatalf("DegradedServers = %v, want [%s]", stats.DegradedServers, slow)
	}

	// A duplicate report is a no-op, not a second transition.
	if err := ctrl.ReportFailure(proto.ReportFailureReq{
		Reporter: srvs[1].Addr(), Server: slow, Degraded: true,
	}); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.ProbationList(); len(got) != 1 {
		t.Fatalf("probation list after duplicate report = %v", got)
	}

	// Recovery takes ProbationRecoveryProbes consecutive clean probes:
	// one is not enough.
	if rec := ctrl.ProbeProbationNow(); len(rec) != 0 {
		t.Fatalf("probation lifted after a single clean probe: %v", rec)
	}
	if !ctrl.ServerProbated(slow) {
		t.Fatal("probation vanished before the recovery streak completed")
	}
	if rec := ctrl.ProbeProbationNow(); len(rec) != 1 || rec[0] != slow {
		t.Fatalf("second clean probe did not lift probation: %v", rec)
	}
	if ctrl.ServerProbated(slow) {
		t.Fatal("server still probated after recovery")
	}

	// Re-probate, then make the server unreachable: a probated server
	// that stops answering is escalated from gray to fail-stop.
	if err := ctrl.ReportFailure(proto.ReportFailureReq{
		Reporter: srvs[0].Addr(), Server: slow, Degraded: true,
	}); err != nil {
		t.Fatal(err)
	}
	srvs[2].Close()
	if rec := ctrl.ProbeProbationNow(); len(rec) != 0 {
		t.Fatalf("unreachable probated server reported recovered: %v", rec)
	}
	if !ctrl.ServerDead(slow) {
		t.Fatal("unreachable probated server was not declared dead")
	}
	if ctrl.ServerProbated(slow) {
		t.Fatal("death did not clear probation")
	}
}

// TestProbationAllocationSteering: while a server is on probation the
// allocator places new blocks on healthy servers only, falling back to
// the probated pool when the healthy servers cannot cover a request.
func TestProbationAllocationSteering(t *testing.T) {
	vclock := clock.NewVirtual(time.Unix(0, 0))
	ctrl, srvs := recoveryCtrl(t, vclock, 2, 4, 4)
	slow := srvs[1].Addr()
	if err := ctrl.ReportFailure(proto.ReportFailureReq{
		Reporter: srvs[0].Addr(), Server: slow, Degraded: true,
	}); err != nil {
		t.Fatal(err)
	}

	if err := ctrl.RegisterJob("steer"); err != nil {
		t.Fatal(err)
	}
	// Four single-block prefixes fit on the healthy server alone; none
	// may land on the probated one.
	for i := 0; i < 4; i++ {
		path := core.Path("steer").MustChild(string(rune('a' + i)))
		if _, err := ctrl.CreatePrefix(proto.CreatePrefixReq{
			Path: path, Type: core.DSKV, InitialBlocks: 1,
		}); err != nil {
			t.Fatal(err)
		}
		resp, err := ctrl.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range resp.Map.Blocks {
			if e.Info.Server == slow {
				t.Fatalf("block %v placed on probated server %s", e.Info, slow)
			}
		}
		if len(resp.Probation) != 1 || resp.Probation[0] != slow {
			t.Fatalf("OpenResp.Probation = %v, want [%s]", resp.Probation, slow)
		}
	}
	// The healthy server is now exhausted: the next allocation must
	// fall back to the probated server rather than fail.
	if _, err := ctrl.CreatePrefix(proto.CreatePrefixReq{
		Path: core.Path("steer").MustChild("overflow"), Type: core.DSKV, InitialBlocks: 2,
	}); err != nil {
		t.Fatalf("allocation with only probated capacity left failed: %v", err)
	}
	resp, err := ctrl.Open(core.Path("steer").MustChild("overflow"))
	if err != nil {
		t.Fatal(err)
	}
	fallback := false
	for _, e := range resp.Map.Blocks {
		if e.Info.Server == slow {
			fallback = true
		}
	}
	if !fallback {
		t.Fatal("overflow allocation did not fall back to the probated server")
	}
}

// TestProbationSurvivesFailover is the crash-consistency check for the
// probation op-log kind: a probation set on the leader replicates to
// the standbys, survives the leader's death, and the promoted standby
// both reports it and keeps steering allocation away from the probated
// server — then lifts it through its own recovery probes.
func TestProbationSurvivesFailover(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Hour
	cfg.SlowHopThreshold = 50 * time.Millisecond
	r := newGroupRig(t, cfg, 3, 2, 8)
	slow := r.servers[1].Addr()

	if err := r.ctrls[0].ReportFailure(proto.ReportFailureReq{
		Reporter: r.servers[0].Addr(), Server: slow, Degraded: true,
	}); err != nil {
		t.Fatal(err)
	}
	if !r.ctrls[0].ServerProbated(slow) {
		t.Fatal("leader did not probate the reported server")
	}
	// ReportFailure flushes the op-log before returning, so the
	// standbys already mirror the probation.
	for i, ctrl := range r.ctrls[1:] {
		if !ctrl.ServerProbated(slow) {
			t.Fatalf("standby %d missing replicated probation", i+1)
		}
	}

	// Kill the leader and promote the first standby. The promotion
	// rebuilds the allocator from replicated metadata and must re-apply
	// the probation suspension to it.
	r.ctrls[0].Close()
	if gen := r.ctrls[1].PromoteNow(); gen != 2 {
		t.Fatalf("promotion gen = %d, want 2", gen)
	}
	if !r.ctrls[1].ServerProbated(slow) {
		t.Fatal("probation lost across controller failover")
	}
	if stats := r.ctrls[1].Stats(); len(stats.DegradedServers) != 1 || stats.DegradedServers[0] != slow {
		t.Fatalf("new leader DegradedServers = %v, want [%s]", stats.DegradedServers, slow)
	}

	// New allocations on the promoted leader avoid the probated server.
	c, err := client.Dial(context.Background(), client.WithControllers(r.addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.RegisterJob(ctx, "failover"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreatePrefix(ctx, "failover/kv", nil, core.DSKV, 2, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := r.ctrls[1].Open(core.Path("failover").MustChild("kv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range resp.Map.Blocks {
		if e.Info.Server == slow {
			t.Fatalf("promoted leader placed block %v on probated server", e.Info)
		}
	}

	// The promoted leader's own recovery probes lift the probation and
	// replicate the lift to the surviving standby. The pulse first
	// bootstraps the standby onto the new leader's stream — its
	// snapshot carries the probation set.
	r.ctrls[1].PulseNow()
	r.ctrls[1].ProbeProbationNow()
	if rec := r.ctrls[1].ProbeProbationNow(); len(rec) != 1 || rec[0] != slow {
		t.Fatalf("promoted leader did not lift probation: %v", rec)
	}
	if r.ctrls[2].ServerProbated(slow) {
		t.Fatal("probation lift did not replicate to the standby")
	}
}
