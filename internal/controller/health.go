package controller

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/proto"
)

// Failure detection (§4.2 fault tolerance): memory servers send
// periodic heartbeats (MethodHeartbeat); the controller tracks each
// server's last beat on its clock and declares a server dead once the
// beat is older than the suspicion window. Death can also be
// established early from write-path evidence — a chain head that could
// not reach its successor files a MethodReportFailure, which the
// controller verifies with its own probe before acting. Either way,
// markServerDead evicts the server's free blocks from the allocator
// (so scale-ups stop selecting it), bumps the cluster membership
// epoch, and chain repair follows (see repair.go).

// Heartbeat records a liveness beat from addr and returns the current
// membership epoch. A beat from a server the controller does not track
// (never registered, declared dead, or the controller restarted)
// returns ErrNotFound: the server must re-register its capacity.
func (c *Controller) Heartbeat(addr string) (uint64, error) {
	c.hbMu.Lock()
	_, known := c.lastBeat[addr]
	if !known || c.deadServers[addr] {
		c.hbMu.Unlock()
		return c.memberEpoch.Load(), fmt.Errorf("controller: server %s is not a live member: %w",
			addr, core.ErrNotFound)
	}
	c.lastBeat[addr] = c.clk.Now()
	c.hbMu.Unlock()
	return c.memberEpoch.Load(), nil
}

// noteServerAlive (re)admits addr to the tracked membership:
// registration counts as the first heartbeat, and re-registration
// revives a server previously declared dead. A re-registering server
// restarted, so any gray-failure probation it carried is lifted.
func (c *Controller) noteServerAlive(addr string) {
	c.hbMu.Lock()
	c.lastBeat[addr] = c.clk.Now()
	delete(c.deadServers, addr)
	wasProbated := c.probation[addr]
	delete(c.probation, addr)
	delete(c.probationStreak, addr)
	c.hbMu.Unlock()
	if wasProbated {
		c.alloc.Resume(addr)
	}
}

// detectorWorker is the failure detector's scan loop, paced at the
// heartbeat interval on the controller's clock (virtual in chaos
// tests, which step it via CheckLivenessNow instead).
func (c *Controller) detectorWorker() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-c.clk.After(c.cfg.HeartbeatInterval):
			c.CheckLivenessNow()
		}
	}
}

// CheckLivenessNow runs one failure-detection scan synchronously,
// declaring dead (and repairing) every tracked server whose last beat
// is older than the suspicion window. Returns the newly dead servers.
// Deterministic tests call this directly under a virtual clock.
func (c *Controller) CheckLivenessNow() []string {
	if c.cfg.SuspicionWindow <= 0 || !c.leading.Load() {
		// Standbys learn server deaths from the op-log; they track beats
		// only to seed their own detector after a promotion.
		return nil
	}
	now := c.clk.Now()
	var suspects []string
	c.hbMu.Lock()
	for addr, beat := range c.lastBeat {
		if !c.deadServers[addr] && now.Sub(beat) > c.cfg.SuspicionWindow {
			suspects = append(suspects, addr)
		}
	}
	c.hbMu.Unlock()
	sort.Strings(suspects)
	var dead []string
	for _, addr := range suspects {
		if c.FailServer(addr) {
			dead = append(dead, addr)
		}
	}
	// Ride the same scan cadence for gray-failure recovery: probe the
	// probated servers and lift probation after enough clean probes.
	// (ProbeProbationNow flushes its own transitions.)
	c.ProbeProbationNow()
	if len(dead) > 0 {
		_ = c.repl.flush()
	}
	return dead
}

// FailServer declares addr dead and synchronously repairs every chain
// that lost a member on it. Returns false if addr was already dead.
// Callers must not hold a shard lock (repair takes them); code that
// does holds one uses evictServer instead.
func (c *Controller) FailServer(addr string) bool {
	if !c.markServerDead(addr) {
		return false
	}
	c.repairAfterDeath(addr)
	return true
}

// evictServer is FailServer for callers holding a shard lock (e.g. a
// scale-up that just discovered an unreachable server): death
// bookkeeping and allocator eviction happen synchronously — so the
// caller's retry cannot re-select the dead server — while chain repair
// runs on its own goroutine once the caller releases the lock.
func (c *Controller) evictServer(addr string) {
	if !c.markServerDead(addr) {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.repairAfterDeath(addr)
	}()
}

// markServerDead performs the death bookkeeping: dedup via the dead
// set, evict the server's free blocks from the allocator, drop its
// pooled connection, and bump the membership epoch. Returns false if
// the server was already dead.
func (c *Controller) markServerDead(addr string) bool {
	c.hbMu.Lock()
	if c.deadServers[addr] {
		c.hbMu.Unlock()
		return false
	}
	c.deadServers[addr] = true
	delete(c.lastBeat, addr)
	// Death supersedes probation: the chain splice is coming, so the
	// softer exclusion is moot.
	delete(c.probation, addr)
	delete(c.probationStreak, addr)
	c.hbMu.Unlock()
	c.srvFailures.Add(1)
	c.alloc.RemoveServer(addr)
	c.servers.Drop(addr)
	c.memberEpoch.Add(1)
	c.repl.emit(replOp{Kind: opServerDead, Addr: addr})
	c.log.Warn("controller: server declared dead", "addr", addr,
		"epoch", c.memberEpoch.Load())
	return true
}

// ServerDead reports whether addr has been declared dead.
func (c *Controller) ServerDead(addr string) bool {
	c.hbMu.Lock()
	defer c.hbMu.Unlock()
	return c.deadServers[addr]
}

// MembershipEpoch returns the cluster membership epoch: it advances on
// every server registration, death and drain.
func (c *Controller) MembershipEpoch() uint64 { return c.memberEpoch.Load() }

// LastBeat returns the recorded heartbeat time for addr (test hook).
func (c *Controller) LastBeat(addr string) (time.Time, bool) {
	c.hbMu.Lock()
	defer c.hbMu.Unlock()
	t, ok := c.lastBeat[addr]
	return t, ok
}

// ReportFailure handles write-path failure evidence from a chain head.
// The controller does not take the reporter's word for it: it probes
// the accused server itself. For fail-stop evidence (Degraded unset),
// only a failed probe (or an already broken pooled session) escalates
// to death and repair — this keeps one flaky link between two servers
// from killing a healthy member. For fail-slow evidence (Degraded
// set), a probe that proves the server alive places it on probation
// instead: alive-but-slow must never trigger a chain splice, but it
// should stop attracting new allocations and hedge traffic.
func (c *Controller) ReportFailure(req proto.ReportFailureReq) error {
	if req.Server == "" {
		return fmt.Errorf("controller: failure report without a server: %w", core.ErrNotFound)
	}
	if c.ServerDead(req.Server) {
		return nil // already handled
	}
	var resp proto.ServerStatsResp
	err := c.callServer(req.Server, proto.MethodServerStats, proto.ServerStatsReq{}, &resp)
	var ue *serverUnreachableError
	if err != nil && errors.As(err, &ue) {
		// Connectivity-class failure (undialable, session broken
		// mid-call): the report is corroborated as fail-stop regardless
		// of its evidence class.
		c.log.Warn("controller: failure report confirmed",
			"server", req.Server, "reporter", req.Reporter, "block", req.Block)
		c.FailServer(req.Server)
		return nil
	}
	if req.Degraded {
		// The server answered (or at least errored from its own
		// process): alive, but the reporter measured persistent
		// replication stalls through it. Probate rather than kill.
		if c.setProbation(req.Server, true) {
			c.log.Warn("controller: server placed on gray-failure probation",
				"server", req.Server, "reporter", req.Reporter, "block", req.Block)
			if ferr := c.repl.flush(); ferr != nil {
				return ferr
			}
		}
		return nil
	}
	// A clean reply — or any error the server itself returned,
	// including a probe that merely timed out under load — proves
	// the process is alive; a fail-stop report it does not confirm
	// must not kill a healthy member.
	c.log.Debug("controller: failure report not confirmed by probe",
		"server", req.Server, "reporter", req.Reporter, "probe", err)
	return nil
}

// setProbation flips addr's probation state, suspends or resumes it in
// the allocator, and replicates the transition through the op-log so a
// promoted standby preserves it. Dead servers are never probated.
// Returns false when the state did not change.
func (c *Controller) setProbation(addr string, on bool) bool {
	c.hbMu.Lock()
	if c.deadServers[addr] || c.probation[addr] == on {
		c.hbMu.Unlock()
		return false
	}
	if on {
		c.probation[addr] = true
	} else {
		delete(c.probation, addr)
	}
	delete(c.probationStreak, addr)
	c.hbMu.Unlock()
	if on {
		c.alloc.Suspend(addr)
	} else {
		c.alloc.Resume(addr)
	}
	c.repl.emit(replOp{Kind: opServerProbation, Addr: addr, On: on})
	return true
}

// applyProbationLocal mirrors a replicated probation transition on a
// standby: map state only — the allocator is rebuilt at promotion,
// which re-applies suspensions from this set.
func (c *Controller) applyProbationLocal(addr string, on bool) {
	c.hbMu.Lock()
	if on && !c.deadServers[addr] {
		c.probation[addr] = true
	} else if !on {
		delete(c.probation, addr)
	}
	delete(c.probationStreak, addr)
	c.hbMu.Unlock()
}

// ServerProbated reports whether addr is on gray-failure probation.
func (c *Controller) ServerProbated(addr string) bool {
	c.hbMu.Lock()
	defer c.hbMu.Unlock()
	return c.probation[addr]
}

// ProbationList returns the probated servers, sorted.
func (c *Controller) ProbationList() []string {
	c.hbMu.Lock()
	out := make([]string, 0, len(c.probation))
	for addr := range c.probation {
		out = append(out, addr)
	}
	c.hbMu.Unlock()
	sort.Strings(out)
	return out
}

// ProbeProbationNow runs one recovery scan over the probated servers:
// each is probed with MethodServerStats and the round trip measured on
// the controller's clock. ProbationRecoveryProbes consecutive probes
// at or under SlowHopThreshold lift the probation (the server must
// prove sustained recovery, not one lucky fast reply); a slow probe
// resets the streak; an unreachable probe escalates to death — a
// probated server that stops answering has crossed from gray to
// fail-stop. Transitions are flushed to the standbys before
// returning. Returns the servers whose probation was lifted.
func (c *Controller) ProbeProbationNow() []string {
	threshold := c.cfg.SlowHopThreshold
	needed := c.cfg.ProbationRecoveryProbes
	if needed <= 0 {
		needed = core.DefaultProbationRecoveryProbes
	}
	var recovered []string
	changed := false
	for _, addr := range c.ProbationList() {
		start := c.clk.Now()
		var resp proto.ServerStatsResp
		err := c.callServer(addr, proto.MethodServerStats, proto.ServerStatsReq{}, &resp)
		elapsed := c.clk.Now().Sub(start)
		var ue *serverUnreachableError
		if err != nil && errors.As(err, &ue) {
			c.log.Warn("controller: probated server unreachable; escalating to death",
				"server", addr, "err", err)
			c.FailServer(addr)
			changed = true
			continue
		}
		// With fail-slow detection disabled (threshold 0) any live
		// reply counts as clean — probation can then only have been set
		// administratively and reachability is the recovery bar.
		if err != nil || (threshold > 0 && elapsed > threshold) {
			c.hbMu.Lock()
			delete(c.probationStreak, addr)
			c.hbMu.Unlock()
			continue
		}
		c.hbMu.Lock()
		c.probationStreak[addr]++
		streak := c.probationStreak[addr]
		c.hbMu.Unlock()
		if streak >= needed {
			if c.setProbation(addr, false) {
				c.log.Info("controller: gray-failure probation lifted",
					"server", addr, "cleanProbes", streak)
				recovered = append(recovered, addr)
				changed = true
			}
		}
	}
	if changed {
		_ = c.repl.flush()
	}
	return recovered
}
