package controller_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/persist"
	"jiffy/internal/proto"
	"jiffy/internal/server"
)

// faultyStore wraps a Store and fails writes on demand.
type faultyStore struct {
	persist.Store
	mu       sync.Mutex
	failPuts bool
}

func (f *faultyStore) setFailPuts(v bool) {
	f.mu.Lock()
	f.failPuts = v
	f.mu.Unlock()
}

func (f *faultyStore) Put(key string, data []byte) error {
	f.mu.Lock()
	fail := f.failPuts
	f.mu.Unlock()
	if fail {
		return errors.New("injected persist failure")
	}
	return f.Store.Put(key, data)
}

// TestExpiryKeepsDataWhenFlushFails verifies the §3.2 guarantee from
// the reclaim side: if the pre-reclaim flush cannot complete, the
// controller must NOT free the blocks — expiring a lease never loses
// data.
func TestExpiryKeepsDataWhenFlushFails(t *testing.T) {
	fs := &faultyStore{Store: persist.NewMemStore()}
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Persist: fs, DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	addr, _ := ctrl.Listen("mem://flushfail-ctrl")
	srv, err := server.New(server.Options{
		Config: cfg, ControllerAddr: addr, Persist: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Listen("mem://flushfail-srv")
	srv.Register(16)

	ctrl.RegisterJob("j")
	ctrl.CreatePrefix(proto.CreatePrefixReq{
		Path: "j/t", Type: core.DSKV, LeaseDuration: time.Millisecond,
	})
	open, _ := ctrl.Open("j/t")
	blockID := open.Map.Blocks[0].Info.ID
	if _, err := srv.Store().Apply(blockID, core.OpPut,
		[][]byte{[]byte("precious"), []byte("data")}); err != nil {
		t.Fatal(err)
	}

	// Lease lapses but the persist tier is down: no reclaim.
	fs.setFailPuts(true)
	time.Sleep(5 * time.Millisecond)
	if n := ctrl.ExpireNow(); n != 0 {
		t.Fatalf("reclaimed %d prefixes despite flush failure", n)
	}
	if _, err := srv.Store().Apply(blockID, core.OpGet, [][]byte{[]byte("precious")}); err != nil {
		t.Fatalf("data lost during failed flush: %v", err)
	}
	// The tier recovers; the next scan flushes and reclaims.
	fs.setFailPuts(false)
	if n := ctrl.ExpireNow(); n != 1 {
		t.Fatalf("post-recovery scan reclaimed %d", n)
	}
	// And the data is recoverable through Open.
	reopened, err := ctrl.Open("j/t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Store().Apply(reopened.Map.Blocks[0].Info.ID, core.OpGet,
		[][]byte{[]byte("precious")}); err != nil {
		t.Errorf("data lost across recovered expiry: %v", err)
	}
}

// TestScaleUpWithDeadServer: when the server chosen for a new block is
// unreachable, the scale-up evicts it from the allocator and retries
// on a healthy server — the allocator's most-free placement would
// otherwise deterministically re-pick the dead server forever. The
// dead server's unreplicated, unflushed block is marked Lost by the
// follow-up repair.
func TestScaleUpWithDeadServer(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Persist: persist.NewMemStore(), DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	addr, _ := ctrl.Listen("mem://deadsrv-ctrl")

	live, err := server.New(server.Options{Config: cfg, ControllerAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	live.Listen("mem://deadsrv-live")
	live.Register(4)

	dead, err := server.New(server.Options{Config: cfg, ControllerAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	dead.Listen("mem://deadsrv-dead")
	dead.Register(16)

	ctrl.RegisterJob("j")
	// The dead server has the most free blocks, so both the initial
	// allocation and every retry-free scale-up would pick it.
	resp, err := ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/f", Type: core.DSFile})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Map.Blocks[0].Info.Server != "mem://deadsrv-dead" {
		t.Fatalf("precondition: first block on %s, want the dead server", resp.Map.Blocks[0].Info.Server)
	}
	dead.Close()

	// The scale-up discovers the dead server, evicts it, and retries on
	// the live one — it must succeed, not bounce forever.
	sresp, serr := ctrl.ScaleUp(proto.ScaleUpReq{Path: "j/f", Block: resp.Map.Blocks[0].Info.ID})
	if serr != nil {
		t.Fatalf("scale-up with dead server in pool: %v", serr)
	}
	var newEntry *struct {
		server string
		id     core.BlockID
	}
	for _, e := range sresp.Map.Blocks {
		if e.Chunk == 1 {
			newEntry = &struct {
				server string
				id     core.BlockID
			}{e.Info.Server, e.Info.ID}
		}
	}
	if newEntry == nil {
		t.Fatal("scale-up did not append a chunk")
	}
	if newEntry.server != "mem://deadsrv-live" {
		t.Errorf("new chunk placed on %s, want the live server", newEntry.server)
	}
	if !ctrl.ServerDead("mem://deadsrv-dead") {
		t.Error("unreachable server not declared dead")
	}
	stats := ctrl.Stats()
	if stats.Servers != 1 || stats.TotalBlocks != 4 {
		t.Errorf("dead server still in the pool: %+v", stats)
	}
	// Later scale-ups never retry the dead server.
	sresp2, serr := ctrl.ScaleUp(proto.ScaleUpReq{Path: "j/f", Block: newEntry.id})
	if serr != nil {
		t.Fatalf("second scale-up: %v", serr)
	}
	for _, e := range sresp2.Map.Blocks {
		if e.Chunk > 0 && e.Info.Server != "mem://deadsrv-live" {
			t.Errorf("chunk %d placed on %s after eviction", e.Chunk, e.Info.Server)
		}
	}
	// The dead server's unreplicated, unflushed block ends up Lost
	// (repair runs asynchronously after the eviction).
	deadline := time.Now().Add(5 * time.Second)
	for {
		open, err := ctrl.Open("j/f")
		if err != nil {
			t.Fatal(err)
		}
		if open.Map.Blocks[0].Lost {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead server's unreplicated block never marked lost")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClientSurvivesServerRestartWindow: ops against a vanished server
// fail with a connection error rather than hanging.
func TestClientSurvivesServerRestartWindow(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Persist: persist.NewMemStore(), DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	addr, _ := ctrl.Listen("mem://restart-ctrl")
	srv, err := server.New(server.Options{Config: cfg, ControllerAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	srv.Listen("mem://restart-srv")
	srv.Register(8)

	ctrl.RegisterJob("j")
	resp, _ := ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/t", Type: core.DSKV})
	srv.Close()

	// Controller-side operations needing the dead server fail with a
	// wrapped connection error within the RPC call, not a hang.
	done := make(chan error, 1)
	go func() {
		_, err := ctrl.FlushPrefix("j/t", "ckpt/x")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("flush against dead server succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flush against dead server hung")
	}
	_ = resp
}
