package controller_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/persist"
	"jiffy/internal/proto"
	"jiffy/internal/server"
)

// faultyStore wraps a Store and fails writes on demand.
type faultyStore struct {
	persist.Store
	mu       sync.Mutex
	failPuts bool
}

func (f *faultyStore) setFailPuts(v bool) {
	f.mu.Lock()
	f.failPuts = v
	f.mu.Unlock()
}

func (f *faultyStore) Put(key string, data []byte) error {
	f.mu.Lock()
	fail := f.failPuts
	f.mu.Unlock()
	if fail {
		return errors.New("injected persist failure")
	}
	return f.Store.Put(key, data)
}

// TestExpiryKeepsDataWhenFlushFails verifies the §3.2 guarantee from
// the reclaim side: if the pre-reclaim flush cannot complete, the
// controller must NOT free the blocks — expiring a lease never loses
// data.
func TestExpiryKeepsDataWhenFlushFails(t *testing.T) {
	fs := &faultyStore{Store: persist.NewMemStore()}
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Persist: fs, DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	addr, _ := ctrl.Listen("mem://flushfail-ctrl")
	srv, err := server.New(server.Options{
		Config: cfg, ControllerAddr: addr, Persist: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Listen("mem://flushfail-srv")
	srv.Register(16)

	ctrl.RegisterJob("j")
	ctrl.CreatePrefix(proto.CreatePrefixReq{
		Path: "j/t", Type: core.DSKV, LeaseDuration: time.Millisecond,
	})
	open, _ := ctrl.Open("j/t")
	blockID := open.Map.Blocks[0].Info.ID
	if _, err := srv.Store().Apply(blockID, core.OpPut,
		[][]byte{[]byte("precious"), []byte("data")}); err != nil {
		t.Fatal(err)
	}

	// Lease lapses but the persist tier is down: no reclaim.
	fs.setFailPuts(true)
	time.Sleep(5 * time.Millisecond)
	if n := ctrl.ExpireNow(); n != 0 {
		t.Fatalf("reclaimed %d prefixes despite flush failure", n)
	}
	if _, err := srv.Store().Apply(blockID, core.OpGet, [][]byte{[]byte("precious")}); err != nil {
		t.Fatalf("data lost during failed flush: %v", err)
	}
	// The tier recovers; the next scan flushes and reclaims.
	fs.setFailPuts(false)
	if n := ctrl.ExpireNow(); n != 1 {
		t.Fatalf("post-recovery scan reclaimed %d", n)
	}
	// And the data is recoverable through Open.
	reopened, err := ctrl.Open("j/t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Store().Apply(reopened.Map.Blocks[0].Info.ID, core.OpGet,
		[][]byte{[]byte("precious")}); err != nil {
		t.Errorf("data lost across recovered expiry: %v", err)
	}
}

// TestScaleUpWithDeadServer: when the server chosen for a new block is
// unreachable, the scale-up fails cleanly, the block is not leaked,
// and the structure keeps serving from its existing blocks.
func TestScaleUpWithDeadServer(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Persist: persist.NewMemStore(), DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	addr, _ := ctrl.Listen("mem://deadsrv-ctrl")

	live, err := server.New(server.Options{Config: cfg, ControllerAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	live.Listen("mem://deadsrv-live")
	live.Register(4)

	dead, err := server.New(server.Options{Config: cfg, ControllerAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	dead.Listen("mem://deadsrv-dead")
	dead.Register(16)

	ctrl.RegisterJob("j")
	// Force the first block onto the live server by allocating while
	// the dead one is still up, then kill it.
	resp, err := ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/f", Type: core.DSFile})
	if err != nil {
		t.Fatal(err)
	}
	dead.Close()

	before := ctrl.Stats()
	// Scale-ups will try the dead server (most free blocks) and fail.
	_, serr := ctrl.ScaleUp(proto.ScaleUpReq{Path: "j/f", Block: resp.Map.Blocks[0].Info.ID})
	if serr == nil {
		// The block may have landed on the live server; that's fine,
		// but then the allocation must be consistent.
		after := ctrl.Stats()
		if after.AllocatedBlocks != before.AllocatedBlocks+1 {
			t.Errorf("inconsistent allocation after scale-up: %+v → %+v", before, after)
		}
		return
	}
	// Failure path: no block leaked.
	after := ctrl.Stats()
	if after.AllocatedBlocks != before.AllocatedBlocks {
		t.Errorf("blocks leaked on failed scale-up: %+v → %+v", before, after)
	}
	// The existing block still serves (if it lives on the live server).
	if resp.Map.Blocks[0].Info.Server == "mem://deadsrv-live" {
		if _, err := live.Store().Apply(resp.Map.Blocks[0].Info.ID, core.OpFileWrite,
			[][]byte{{0, 0, 0, 0, 0, 0, 0, 0}, []byte("still works")}); err != nil {
			t.Errorf("surviving block broken: %v", err)
		}
	}
}

// TestClientSurvivesServerRestartWindow: ops against a vanished server
// fail with a connection error rather than hanging.
func TestClientSurvivesServerRestartWindow(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Persist: persist.NewMemStore(), DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	addr, _ := ctrl.Listen("mem://restart-ctrl")
	srv, err := server.New(server.Options{Config: cfg, ControllerAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	srv.Listen("mem://restart-srv")
	srv.Register(8)

	ctrl.RegisterJob("j")
	resp, _ := ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/t", Type: core.DSKV})
	srv.Close()

	// Controller-side operations needing the dead server fail with a
	// wrapped connection error within the RPC call, not a hang.
	done := make(chan error, 1)
	go func() {
		_, err := ctrl.FlushPrefix("j/t", "ckpt/x")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("flush against dead server succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flush against dead server hung")
	}
	_ = resp
}
