package controller

import (
	"sync"

	"jiffy/internal/core"
	"jiffy/internal/hierarchy"
)

// Shard map (§4.2.1 scaling). Controller metadata is partitioned into
// shards: jobs (and with them their hierarchy subtrees and partition
// maps) are hashed across N shard workers, each with its own lock
// domain, so control operations for different jobs proceed in
// parallel. Alongside the job table each shard keeps a block/chain
// index keyed by memory-server address: the set of nodes that
// currently place at least one chain member on that server. Chain
// repair consults the index instead of walking every job, making a
// server death O(affected entries) rather than O(total metadata).
//
// The index is maintained at every commit point that changes a node's
// partition map — commitNodeLocked is the single choke point, and it
// doubles as the replication emit point (see replication.go): anything
// worth reindexing is by definition a durable metadata mutation the
// standbys must see.

// shard owns a disjoint subset of jobs.
type shard struct {
	mu   sync.Mutex
	jobs map[core.JobID]*hierarchy.Hierarchy

	// byServer maps a memory-server address to the nodes keeping at
	// least one live chain member there (and each node's owning job).
	byServer map[string]map[*hierarchy.Node]core.JobID
	// nodeServers is the reverse direction: the server set a node was
	// last indexed under, so reindexing can drop stale entries first.
	nodeServers map[*hierarchy.Node][]string
}

func newShard() *shard {
	return &shard{
		jobs:        make(map[core.JobID]*hierarchy.Hierarchy),
		byServer:    make(map[string]map[*hierarchy.Node]core.JobID),
		nodeServers: make(map[*hierarchy.Node][]string),
	}
}

// reindexNodeLocked recomputes the server index entries for one node.
// Caller holds the shard lock.
func (sh *shard) reindexNodeLocked(job core.JobID, n *hierarchy.Node) {
	sh.dropNodeIndexLocked(n)
	seen := make(map[string]bool)
	for _, e := range n.Map.Blocks {
		if e.Lost {
			continue
		}
		for _, info := range e.Replicas() {
			if seen[info.Server] {
				continue
			}
			seen[info.Server] = true
			set := sh.byServer[info.Server]
			if set == nil {
				set = make(map[*hierarchy.Node]core.JobID)
				sh.byServer[info.Server] = set
			}
			set[n] = job
		}
	}
	if len(seen) == 0 {
		return
	}
	servers := make([]string, 0, len(seen))
	for addr := range seen {
		servers = append(servers, addr)
	}
	sh.nodeServers[n] = servers
}

// dropNodeIndexLocked removes a node from the server index. Caller
// holds the shard lock.
func (sh *shard) dropNodeIndexLocked(n *hierarchy.Node) {
	for _, addr := range sh.nodeServers[n] {
		if set := sh.byServer[addr]; set != nil {
			delete(set, n)
			if len(set) == 0 {
				delete(sh.byServer, addr)
			}
		}
	}
	delete(sh.nodeServers, n)
}

// dropJobIndexLocked removes every node of a job from the server
// index. Caller holds the shard lock.
func (sh *shard) dropJobIndexLocked(h *hierarchy.Hierarchy) {
	h.Walk(func(n *hierarchy.Node) bool {
		sh.dropNodeIndexLocked(n)
		return true
	})
}

// indexedNodesLocked returns the nodes with a chain member on addr.
// Caller holds the shard lock.
func (sh *shard) indexedNodesLocked(addr string) []*hierarchy.Node {
	set := sh.byServer[addr]
	if len(set) == 0 {
		return nil
	}
	nodes := make([]*hierarchy.Node, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	return nodes
}

// commitNodeLocked is the single commit choke point for node metadata
// mutations: it refreshes the shard's server index and streams the
// node's new image to the standbys. Caller holds the shard lock.
func (c *Controller) commitNodeLocked(job core.JobID, n *hierarchy.Node) {
	sh := c.shardFor(job)
	sh.reindexNodeLocked(job, n)
	c.repl.emit(replOp{Kind: opNodeUpsert, Job: job, Node: imageOfNode(n), Now: c.clk.Now()})
}

// imageOfNode serializes one node for replication, parents by name
// (the hierarchy's names are unique per job).
func imageOfNode(n *hierarchy.Node) nodeImage {
	var parents []string
	for _, p := range n.Parents() {
		parents = append(parents, p.Name)
	}
	return nodeImage{
		Name:          n.Name,
		Parents:       parents,
		LeaseDuration: n.LeaseDuration,
		LastRenewed:   n.LastRenewed,
		Type:          n.Type,
		Map:           n.Map.Clone(),
		Flushed:       n.Flushed,
		FlushKey:      n.FlushKey,
		Quota:         n.Quota,
	}
}
