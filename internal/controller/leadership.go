package controller

import (
	"errors"
	"sort"
	"sync"
	"time"

	"jiffy/internal/alloc"
	"jiffy/internal/core"
	"jiffy/internal/hierarchy"
	"jiffy/internal/proto"
)

// Leadership (§4.2 fault tolerance, control plane). Controllers form a
// replicated group: one active leader serves every client and server
// RPC, the standbys apply its op-log stream (replication.go) and
// answer everything else with a typed NotLeader redirect. Leadership
// is fenced by a monotonically increasing generation: each promotion
// increments it, every replication message carries it, and a deposed
// leader demotes itself the moment a standby answers with a higher
// generation than its own — so two controllers can never both have
// their writes acknowledged by the same standby set.
//
// Failover detection rides the existing heartbeat/clock machinery:
// the leader's stream (op batches and idle pulses) doubles as its
// heartbeat, and a standby promotes itself once the leader has been
// silent for the suspicion window, scaled by the standby's rank so the
// lowest-indexed standby wins without an election protocol.
//
// Documented limitations (see DESIGN.md §14): the group has no quorum
// — failover is failure-detection-based, so a partition that splits
// leader from standbys can lose acks the leader granted while cut off;
// and a leader crash mid-chain-splice can orphan replacement blocks
// that were created but never committed (they are reclaimed when their
// server re-registers).

// groupState is the controller's view of its replicated group.
type groupState struct {
	mu sync.Mutex
	// peers lists every group member's address, index-aligned across
	// all members; empty means solo (no replication, always leader).
	peers []string
	self  int
	// leaderAddr is who this controller believes leads; gen the
	// leadership generation it has observed.
	leaderAddr string
	gen        uint64
	// appliedSeq is the standby-side op-log position.
	appliedSeq uint64
	// lastLeaderContact is the last time the leader's stream reached
	// this standby (measured on the controller's clock).
	lastLeaderContact time.Time
	// contrib tracks each server's contributed block range; the
	// promotion-time allocator rebuild derives free lists from it.
	contrib map[string]contribRange
	nextID  core.BlockID
}

// ConfigureGroup joins this controller to a replicated group. peers
// lists every member's control address (identical order on every
// member), self is this controller's index, and leader the initial
// leader's index. Standbys must be configured (and listening) before
// the leader, so its first pulse can bootstrap them. Safe to call once,
// after Listen.
func (c *Controller) ConfigureGroup(peers []string, self, leader int) {
	if len(peers) < 2 || self < 0 || self >= len(peers) || leader < 0 || leader >= len(peers) {
		return
	}
	c.group.mu.Lock()
	c.group.peers = append([]string(nil), peers...)
	c.group.self = self
	c.group.leaderAddr = peers[leader]
	c.group.lastLeaderContact = c.clk.Now()
	c.group.mu.Unlock()

	if self == leader {
		c.group.mu.Lock()
		c.group.gen = 1
		seq := c.group.appliedSeq
		c.group.mu.Unlock()
		others := otherPeers(peers, self)
		c.repl.lead(1, seq, others)
		c.leading.Store(true)
		c.repl.pulseNow()
	} else {
		c.leading.Store(false)
	}

	if !c.bgDisabled && c.cfg.HeartbeatInterval > 0 {
		c.wg.Add(1)
		go c.groupWorker()
	}
	c.log.Info("controller: joined replicated group",
		"self", peers[self], "leader", peers[leader], "members", len(peers))
}

func otherPeers(peers []string, self int) []string {
	out := make([]string, 0, len(peers)-1)
	for i, p := range peers {
		if i != self {
			out = append(out, p)
		}
	}
	return out
}

// groupWorker paces the group protocol on the controller's clock: the
// leader pulses its stream (heartbeat + lost-standby bootstrap), a
// standby checks whether the leader has gone silent.
func (c *Controller) groupWorker() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-c.clk.After(c.cfg.HeartbeatInterval):
			if c.leading.Load() {
				c.repl.pulseNow()
			} else {
				c.CheckLeaderNow()
			}
		}
	}
}

// isLeader reports whether this controller currently serves clients.
func (c *Controller) isLeader() bool { return c.leading.Load() }

// notLeaderErr builds the redirect for a request that reached a
// standby.
func (c *Controller) notLeaderErr() *core.NotLeaderError {
	c.group.mu.Lock()
	defer c.group.mu.Unlock()
	return &core.NotLeaderError{Leader: c.group.leaderAddr, Gen: c.group.gen}
}

// selfAddr returns this controller's own group address (its bound
// listen address when solo).
func (c *Controller) selfAddr() string {
	c.group.mu.Lock()
	defer c.group.mu.Unlock()
	if len(c.group.peers) > 0 {
		return c.group.peers[c.group.self]
	}
	return c.boundAddr
}

// observeLeader fences an inbound replication message: reject lower
// generations with a redirect, adopt higher ones (demoting ourselves
// if we were leading — the sender out-promoted us). On adoption the
// standby's op-log position resets: sequence numbers from different
// leaders don't align, so the new leader must bootstrap us before
// streaming (it always does — see replicator.lead).
func (c *Controller) observeLeader(gen uint64, leader string) error {
	c.group.mu.Lock()
	switch {
	case gen < c.group.gen:
		nl := &core.NotLeaderError{Leader: c.group.leaderAddr, Gen: c.group.gen}
		c.group.mu.Unlock()
		return nl
	case gen > c.group.gen:
		wasLeading := c.leading.Load()
		c.group.gen = gen
		c.group.leaderAddr = leader
		c.group.appliedSeq = 0
		c.group.lastLeaderContact = c.clk.Now()
		c.group.mu.Unlock()
		if wasLeading {
			c.leading.Store(false)
			c.repl.stop()
			c.log.Warn("controller: deposed by higher generation", "leader", leader, "gen", gen)
		}
		return nil
	default:
		c.group.lastLeaderContact = c.clk.Now()
		c.group.mu.Unlock()
		return nil
	}
}

// stepDown demotes a leader that learned of a higher generation from a
// standby's redirect. Redirects at or below our own generation are
// stale (e.g. delayed from before our promotion) and ignored — the
// same fence observeLeader applies to inbound streams.
func (c *Controller) stepDown(nl *core.NotLeaderError) {
	c.group.mu.Lock()
	if nl.Gen <= c.group.gen {
		c.group.mu.Unlock()
		return
	}
	c.group.gen = nl.Gen
	c.group.leaderAddr = nl.Leader
	c.group.appliedSeq = 0
	c.group.lastLeaderContact = c.clk.Now()
	c.group.mu.Unlock()
	c.leading.Store(false)
	c.repl.stop()
	c.log.Warn("controller: stepping down", "leader", nl.Leader, "gen", nl.Gen)
}

// CheckLeaderNow runs one standby-side failover check synchronously:
// promote if the leader's stream has been silent longer than the
// suspicion window scaled by this standby's rank (so the
// lowest-indexed live standby takes over first, and a slower one only
// if that in turn goes silent). Deterministic tests call this under a
// virtual clock. Returns true when this call promoted.
func (c *Controller) CheckLeaderNow() bool {
	if c.leading.Load() || c.cfg.SuspicionWindow <= 0 {
		return false
	}
	c.group.mu.Lock()
	if len(c.group.peers) == 0 {
		c.group.mu.Unlock()
		return false
	}
	rank := 0
	for i := range c.group.peers {
		if i == c.group.self {
			break
		}
		if c.group.peers[i] != c.group.leaderAddr {
			rank++
		}
	}
	silent := c.clk.Now().Sub(c.group.lastLeaderContact)
	window := c.cfg.SuspicionWindow * time.Duration(rank+1)
	c.group.mu.Unlock()
	if silent <= window {
		return false
	}
	c.log.Warn("controller: leader silent beyond suspicion window; promoting",
		"silent", silent, "window", window)
	c.PromoteNow()
	return true
}

// PromoteNow makes this controller the group leader under a fresh,
// fenced generation. It rebuilds the allocator's free lists from the
// replicated metadata, advances the membership epoch (so post-failover
// chain repairs commit under a generation no pre-failover write can
// race), grants the servers a heartbeat grace period, points the
// replicator at the remaining peers, and finally opens for client
// traffic — then sweeps any dead servers whose chains the old leader
// may have died mid-repair on. Idempotent: promoting a leader returns
// its current generation.
func (c *Controller) PromoteNow() uint64 {
	// Exclude an in-flight op batch: once the generation advances no
	// further batch passes the fence, and holding applyMu here waits
	// out one already past it.
	c.applyMu.Lock()
	c.group.mu.Lock()
	if c.leading.Load() {
		gen := c.group.gen
		c.group.mu.Unlock()
		c.applyMu.Unlock()
		return gen
	}
	c.group.gen++
	gen := c.group.gen
	if len(c.group.peers) > 0 {
		c.group.leaderAddr = c.group.peers[c.group.self]
	}
	seq := c.group.appliedSeq
	contrib := make(map[string]contribRange, len(c.group.contrib))
	for a, r := range c.group.contrib {
		contrib[a] = r
	}
	nextID := c.group.nextID
	peers := append([]string(nil), c.group.peers...)
	self := c.group.self
	c.group.mu.Unlock()

	c.failovers.Add(1)

	c.hbMu.Lock()
	dead := make(map[string]bool, len(c.deadServers))
	for a := range c.deadServers {
		dead[a] = true
	}
	probated := make([]string, 0, len(c.probation))
	for a := range c.probation {
		probated = append(probated, a)
	}
	now := c.clk.Now()
	for addr := range contrib {
		if !dead[addr] {
			c.lastBeat[addr] = now
		}
	}
	c.hbMu.Unlock()

	c.rebuildAllocator(contrib, dead, nextID)
	// The rebuilt allocator starts with every server healthy; re-apply
	// the replicated probation set so the new leader keeps excluding
	// gray-failed servers from allocation.
	sort.Strings(probated)
	for _, addr := range probated {
		c.alloc.Suspend(addr)
	}
	c.memberEpoch.Add(1)

	if len(peers) > 0 {
		c.repl.lead(gen, seq, otherPeers(peers, self))
	}
	c.leading.Store(true)
	c.applyMu.Unlock()
	c.log.Info("controller: promoted to leader", "gen", gen, "epoch", c.memberEpoch.Load())

	// The old leader may have died mid-repair; re-sweep every dead
	// server. Already-repaired chains no longer reference them, so the
	// sweep only touches what was actually left broken.
	var deadList []string
	for a := range dead {
		deadList = append(deadList, a)
	}
	sort.Strings(deadList)
	for _, addr := range deadList {
		c.repairAfterDeath(addr)
	}
	_ = c.repl.flush()
	return gen
}

// rebuildAllocator reconstitutes the free lists on promotion: each
// live server's free set is its contributed range minus the blocks the
// replicated partition maps say are in use. This is the trick that
// lets the op-log skip allocator internals entirely — no cross-shard
// ordering between allocate and free ops can ever matter.
func (c *Controller) rebuildAllocator(contrib map[string]contribRange, dead map[string]bool, nextID core.BlockID) {
	inUse := make(map[string]map[core.BlockID]bool)
	for _, sh := range c.shards {
		sh.mu.Lock()
		for _, h := range sh.jobs {
			h.Walk(func(n *hierarchy.Node) bool {
				for _, e := range n.Map.Blocks {
					if e.Lost {
						continue
					}
					for _, info := range e.Replicas() {
						set := inUse[info.Server]
						if set == nil {
							set = make(map[core.BlockID]bool)
							inUse[info.Server] = set
						}
						set[info.ID] = true
					}
				}
				return true
			})
		}
		sh.mu.Unlock()
	}
	var states []alloc.ServerState
	for addr, r := range contrib {
		if dead[addr] {
			continue
		}
		used := inUse[addr]
		free := make([]core.BlockID, 0, r.N)
		for id := r.First; id < r.First+core.BlockID(r.N); id++ {
			if !used[id] {
				free = append(free, id)
			}
		}
		if end := r.First + core.BlockID(r.N); end > nextID {
			nextID = end
		}
		states = append(states, alloc.ServerState{Addr: addr, Total: r.N, Free: free})
	}
	sort.Slice(states, func(i, j int) bool { return states[i].Addr < states[j].Addr })
	c.alloc.Restore(states, nextID)
}

// Role reports this controller's view of the group for MethodCtrlRole.
func (c *Controller) Role() proto.CtrlRoleResp {
	c.group.mu.Lock()
	defer c.group.mu.Unlock()
	resp := proto.CtrlRoleResp{Gen: c.group.gen, IsLeader: c.leading.Load()}
	switch {
	case resp.IsLeader && len(c.group.peers) > 0:
		resp.Leader = c.group.peers[c.group.self]
	case resp.IsLeader:
		resp.Leader = c.boundAddr
	default:
		resp.Leader = c.group.leaderAddr
	}
	return resp
}

// PulseNow runs one leader-side stream pulse synchronously (heartbeat
// to standbys, re-bootstrap of lost ones); a no-op on standbys.
// Deterministic tests call this instead of advancing the group clock.
func (c *Controller) PulseNow() {
	if c.leading.Load() {
		c.repl.pulseNow()
	}
}

// Failovers reports how many times this controller has promoted
// itself (test/metrics hook).
func (c *Controller) Failovers() int64 { return c.failovers.Load() }

// ReplicationLag reports the op-log distance to the slowest live
// standby (test/metrics hook; zero when not leading).
func (c *Controller) ReplicationLag() int64 { return c.repl.lag() }

// callPeer sends one RPC to another controller in the group.
func (c *Controller) callPeer(addr string, method uint16, req, resp interface{}) error {
	cl, err := c.ctrlPeers.Get(addr)
	if err != nil {
		return err
	}
	err = cl.CallGob(method, req, resp)
	if err != nil && errors.Is(err, core.ErrClosed) {
		c.ctrlPeers.Drop(addr)
	}
	return err
}
