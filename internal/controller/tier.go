package controller

import (
	"sync"
	"sync/atomic"

	"jiffy/internal/core"
	"jiffy/internal/proto"
	"jiffy/internal/tier"
)

// Tiered-block bookkeeping. Memory servers report every tier
// transition: a demotion before the in-memory copy is released, a
// promotion (rehydration) before the block serves again. The records
// live in their own map under their own mutex — never the job shard
// locks — because reports arrive synchronously from servers that may
// themselves be answering a shard-locked control RPC (e.g. a slot
// export that forced a rehydration); taking the shard lock here would
// deadlock that call.
//
// Records are keyed by (server, block): each chain member demotes
// independently, and a stale report from a member spliced out by a
// repair lands under a key no current chain references, so it is
// harmless. The generation fences demote/rehydrate races per member.
//
// The invariant that makes recovery safe: a recorded tier object
// always contains every acknowledged write of its block. Acknowledging
// a write requires every chain member to apply it, which forces a
// tiered member to rehydrate — and the rehydration clears the record
// before the op (and hence the ack) can proceed.

// tierRecord is the controller's view of one member's demoted block.
type tierRecord struct {
	Path core.Path
	Key  string
	Gen  uint64
}

// tierState is the controller-side tier table, embedded in Controller.
type tierState struct {
	mu      sync.Mutex
	records map[core.BlockInfo]tierRecord

	demotes    atomic.Int64
	promotes   atomic.Int64
	recoveries atomic.Int64
}

// ReportTier records one member's tier transition. Demotions install
// or refresh the record (newer generations win); promotions clear it
// unless a newer demotion has already superseded the reported
// generation.
func (c *Controller) ReportTier(req proto.ReportTierReq) (proto.ReportTierResp, error) {
	c.applyTierReport(req)
	c.repl.emit(replOp{Kind: opTier, Tier: req})
	return proto.ReportTierResp{}, nil
}

// applyTierReport mutates the tier table for one report; shared between
// the RPC path above and standby-side op replay (replication.go).
func (c *Controller) applyTierReport(req proto.ReportTierReq) {
	info := core.BlockInfo{ID: req.Block, Server: req.Server}
	c.tiers.mu.Lock()
	if c.tiers.records == nil {
		c.tiers.records = make(map[core.BlockInfo]tierRecord)
	}
	rec, ok := c.tiers.records[info]
	if req.Demoted {
		if !ok || req.Gen > rec.Gen {
			c.tiers.records[info] = tierRecord{Path: req.Path, Key: req.Key, Gen: req.Gen}
		}
	} else if ok && req.Gen >= rec.Gen {
		delete(c.tiers.records, info)
	}
	c.tiers.mu.Unlock()
	if req.Demoted {
		c.tiers.demotes.Add(1)
	} else {
		c.tiers.promotes.Add(1)
	}
}

// tierRecordFor looks up the record for one chain member.
func (c *Controller) tierRecordFor(info core.BlockInfo) (tierRecord, bool) {
	c.tiers.mu.Lock()
	defer c.tiers.mu.Unlock()
	rec, ok := c.tiers.records[info]
	return rec, ok
}

// dropTierRecord forgets a member's record and garbage-collects its
// persist-tier object. Called when the block is deleted or when a
// repair splices the member out (its object is either consumed by the
// recovery or stale).
func (c *Controller) dropTierRecord(info core.BlockInfo) {
	c.tiers.mu.Lock()
	rec, ok := c.tiers.records[info]
	if ok {
		delete(c.tiers.records, info)
	}
	c.tiers.mu.Unlock()
	if ok {
		if err := c.persist.Delete(rec.Key); err != nil {
			c.log.Debug("controller: tier object delete failed", "key", rec.Key, "err", err)
		}
	}
}

// tieredBlockCount returns the number of recorded tiered members, for
// the jiffy_ctrl_blocks_tiered gauge.
func (c *Controller) tieredBlockCount() int64 {
	c.tiers.mu.Lock()
	defer c.tiers.mu.Unlock()
	return int64(len(c.tiers.records))
}

// recoverFromTier tries to rebuild a dead, survivor-less entry from a
// member's tier object. Any member's record works: a record's
// existence proves no write was acknowledged after that member's
// demotion (see the invariant above), so its snapshot is a superset of
// every acknowledged write. Returns the decoded object of the first
// member with a valid record.
func (c *Controller) recoverFromTier(t repairTarget) (tier.Object, core.BlockInfo, bool) {
	for _, member := range t.entry.Replicas() {
		rec, ok := c.tierRecordFor(member)
		if !ok {
			continue
		}
		data, err := c.persist.Get(rec.Key)
		if err != nil {
			c.log.Warn("controller: tier object unreadable during recovery",
				"block", member.ID, "key", rec.Key, "err", err)
			continue
		}
		obj, err := tier.Decode(data)
		if err != nil {
			c.log.Warn("controller: tier object corrupt during recovery",
				"block", member.ID, "key", rec.Key, "err", err)
			continue
		}
		if obj.Block != member.ID || obj.Gen != rec.Gen {
			c.log.Warn("controller: tier object does not match record",
				"block", member.ID, "key", rec.Key, "gen", rec.Gen, "objGen", obj.Gen)
			continue
		}
		return obj, member, true
	}
	return tier.Object{}, core.BlockInfo{}, false
}
