package controller

import (
	"bytes"
	"testing"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/rpc"
)

// FuzzManifestDecode hardens the flush-manifest codec: a manifest read
// back from the persist tier during LoadPrefix or chain repair is
// attacker-distance data (a corrupted or truncated object store entry),
// so decoding must never panic, and anything the decoder accepts must
// re-encode deterministically — otherwise repair could rebuild a
// prefix from a manifest that no flush could have written.
func FuzzManifestDecode(f *testing.F) {
	valid, err := rpc.Marshal(manifest{
		Type:      core.DSKV,
		NumSlots:  16,
		ChunkSize: 4096,
		Entries: []manifestEntry{
			{Chunk: 0, Slots: []ds.SlotRange{{Lo: 0, Hi: 7}}, Key: "jiffy-flush/j/t/block-0"},
			{Chunk: 1, Slots: []ds.SlotRange{{Lo: 8, Hi: 15}}, Key: "jiffy-flush/j/t/block-1"},
		},
	})
	if err != nil {
		f.Fatalf("marshal seed manifest: %v", err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // bound decoder allocations, not codec behavior
		}
		var m manifest
		if err := rpc.Unmarshal(data, &m); err != nil {
			return // rejection is fine; panicking is not
		}
		// Accepted input must round-trip to a stable encoding.
		re, err := rpc.Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal of accepted manifest failed: %v", err)
		}
		var m2 manifest
		if err := rpc.Unmarshal(re, &m2); err != nil {
			t.Fatalf("decode of re-marshaled manifest failed: %v", err)
		}
		re2, err := rpc.Marshal(m2)
		if err != nil {
			t.Fatalf("second re-marshal failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("manifest encoding not stable:\n first: %x\nsecond: %x", re, re2)
		}
	})
}
