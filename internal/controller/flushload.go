package controller

import (
	"fmt"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/hierarchy"
	"jiffy/internal/proto"
	"jiffy/internal/rpc"
)

// manifest records a flushed prefix's layout so Load can rebuild the
// partition map exactly (block roles, slots, chunk indices).
type manifest struct {
	Type      core.DSType
	NumSlots  int
	ChunkSize int
	Entries   []manifestEntry
}

// manifestEntry pairs a flushed block's role with its snapshot key.
type manifestEntry struct {
	Chunk int
	Slots []ds.SlotRange
	Key   string
}

// autoFlushKey is where lease expiry flushes a prefix.
func autoFlushKey(path core.Path) string { return "jiffy-flush/" + string(path) }

// FlushPrefix implements flushAddrPrefix (§4.1): snapshot every block
// of the prefix into the persistent store under externalPath. Data
// stays in memory; this is a checkpoint, not a reclaim.
func (c *Controller) FlushPrefix(path core.Path, externalPath string) (int, error) {
	count := 0
	err := c.withJob(path.Job(), func(h *hierarchy.Hierarchy) error {
		n, err := h.Resolve(path)
		if err != nil {
			return err
		}
		var cnt int
		cnt, err = c.flushLocked(n, externalPath)
		count = cnt
		if err == nil {
			c.commitNodeLocked(n.Job, n)
		}
		return err
	})
	return count, err
}

// flushLocked writes a node's blocks and manifest to the persistent
// store. Caller holds the shard lock.
func (c *Controller) flushLocked(n *hierarchy.Node, externalPath string) (int, error) {
	if externalPath == "" {
		externalPath = autoFlushKey(n.CanonicalPath())
	}
	m := manifest{
		Type:      n.Map.Type,
		NumSlots:  n.Map.NumSlots,
		ChunkSize: n.Map.ChunkSize,
	}
	for i, e := range n.Map.Blocks {
		key := fmt.Sprintf("%s/block-%d", externalPath, i)
		// Flush from the read target — under chain replication the
		// tail holds only fully propagated writes.
		if err := c.flushBlockOnServer(e.ReadTarget(), key); err != nil {
			return i, err
		}
		m.Entries = append(m.Entries, manifestEntry{Chunk: e.Chunk, Slots: e.Slots, Key: key})
		c.flushBlocks.Add(1)
	}
	data, err := rpc.Marshal(m)
	if err != nil {
		return len(m.Entries), err
	}
	if err := c.persist.Put(externalPath+"/manifest", data); err != nil {
		return len(m.Entries), err
	}
	n.FlushKey = externalPath
	return len(m.Entries), nil
}

// LoadPrefix implements loadAddrPrefix (§4.1): rebuild the prefix's
// blocks from a flushed snapshot, allocating fresh memory.
func (c *Controller) LoadPrefix(path core.Path, externalPath string) (proto.LoadPrefixResp, error) {
	var resp proto.LoadPrefixResp
	err := c.withJob(path.Job(), func(h *hierarchy.Hierarchy) error {
		n, err := h.Resolve(path)
		if err != nil {
			return err
		}
		if err := c.loadLocked(n, externalPath); err != nil {
			return err
		}
		c.commitNodeLocked(n.Job, n)
		resp.Map = n.Map.Clone()
		return nil
	})
	return resp, err
}

// loadLocked restores a node's data from the persistent store,
// replacing any current blocks. Caller holds the shard lock.
func (c *Controller) loadLocked(n *hierarchy.Node, externalPath string) error {
	if externalPath == "" {
		externalPath = n.FlushKey
	}
	if externalPath == "" {
		externalPath = autoFlushKey(n.CanonicalPath())
	}
	data, err := c.persist.Get(externalPath + "/manifest")
	if err != nil {
		return fmt.Errorf("controller: load %q: %w", externalPath, err)
	}
	var m manifest
	if err := rpc.Unmarshal(data, &m); err != nil {
		return err
	}
	chains, err := c.allocateChains(len(m.Entries))
	if err != nil {
		return err
	}
	// Release any blocks the prefix still holds before replacing them.
	c.releaseBlocksLocked(n)

	newMap := ds.PartitionMap{
		Type:      m.Type,
		Epoch:     n.Map.Epoch + 1,
		NumSlots:  m.NumSlots,
		ChunkSize: m.ChunkSize,
	}
	path := n.CanonicalPath()
	freeAll := func() {
		for _, chain := range chains {
			c.alloc.Free(chain)
		}
	}
	for i, me := range m.Entries {
		chain := chains[i]
		if err := c.createChainOnServers(chain, path, m.Type, me.Chunk, me.Slots); err != nil {
			freeAll()
			return err
		}
		// Restore every replica from the same snapshot.
		for _, member := range chain {
			if err := c.loadBlockOnServer(member, me.Key); err != nil {
				freeAll()
				return err
			}
		}
		newMap.Blocks = append(newMap.Blocks, entryFor(chain, me.Chunk, me.Slots))
	}
	// Re-link restored queue segments.
	if m.Type == core.DSQueue {
		for i := 0; i+1 < len(newMap.Blocks); i++ {
			if err := c.setNextOnChain(newMap.Blocks[i], newMap.Blocks[i+1].Info); err != nil {
				return err
			}
		}
	}
	n.Map = newMap
	n.Flushed = false
	n.FlushKey = externalPath
	return nil
}
