package controller

import (
	"errors"
	"fmt"
	"testing"

	"jiffy/internal/core"
)

// newSoloController builds an unlistened controller for state-machine
// tests; no group is configured unless the test sets one up.
func newSoloController(t *testing.T, shards int) *Controller {
	t.Helper()
	c, err := New(Options{Config: core.TestConfig(), Shards: shards, DisableExpiry: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// joinGroup wires a controller into a group without any peer I/O: the
// test drives fencing transitions directly.
func joinGroup(c *Controller, peers []string, self int, leaderAddr string, gen uint64, leading bool) {
	c.group.mu.Lock()
	c.group.peers = append([]string(nil), peers...)
	c.group.self = self
	c.group.leaderAddr = leaderAddr
	c.group.gen = gen
	c.group.lastLeaderContact = c.clk.Now()
	c.group.mu.Unlock()
	c.leading.Store(leading)
}

// TestLeadershipFencing is the table-driven generation state machine:
// every inbound leadership claim is fenced by generation — lower
// rejected with a redirect to the incumbent, equal refreshed, higher
// adopted (deposing a leader that was out-promoted).
func TestLeadershipFencing(t *testing.T) {
	peers := []string{"ctrl-0", "ctrl-1", "ctrl-2"}
	cases := []struct {
		name       string
		startGen   uint64
		leading    bool
		claimGen   uint64
		claimAddr  string
		wantErr    bool
		wantGen    uint64 // group gen after the claim
		wantLeader string // believed leader after the claim
		wantLead   bool   // still serving clients?
	}{
		{
			name:     "lower generation rejected",
			startGen: 5, leading: false, claimGen: 3, claimAddr: "ctrl-2",
			wantErr: true, wantGen: 5, wantLeader: "ctrl-0", wantLead: false,
		},
		{
			name:     "equal generation refreshes contact",
			startGen: 5, leading: false, claimGen: 5, claimAddr: "ctrl-0",
			wantErr: false, wantGen: 5, wantLeader: "ctrl-0", wantLead: false,
		},
		{
			name:     "higher generation adopted",
			startGen: 5, leading: false, claimGen: 7, claimAddr: "ctrl-2",
			wantErr: false, wantGen: 7, wantLeader: "ctrl-2", wantLead: false,
		},
		{
			name:     "leader deposed by higher generation",
			startGen: 5, leading: true, claimGen: 6, claimAddr: "ctrl-2",
			wantErr: false, wantGen: 6, wantLeader: "ctrl-2", wantLead: false,
		},
		{
			name:     "leader fences a stale claimant",
			startGen: 5, leading: true, claimGen: 4, claimAddr: "ctrl-2",
			wantErr: true, wantGen: 5, wantLeader: "ctrl-0", wantLead: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newSoloController(t, 1)
			self := 1
			joinGroup(c, peers, self, "ctrl-0", tc.startGen, tc.leading)
			err := c.observeLeader(tc.claimGen, tc.claimAddr)
			if (err != nil) != tc.wantErr {
				t.Fatalf("observeLeader(%d) err = %v, wantErr %v", tc.claimGen, err, tc.wantErr)
			}
			if err != nil {
				var nl *core.NotLeaderError
				if !errors.As(err, &nl) {
					t.Fatalf("rejection is %T, want NotLeaderError", err)
				}
				if nl.Gen != tc.startGen {
					t.Errorf("redirect gen = %d, want incumbent %d", nl.Gen, tc.startGen)
				}
			}
			c.group.mu.Lock()
			gen, leader := c.group.gen, c.group.leaderAddr
			c.group.mu.Unlock()
			if gen != tc.wantGen || leader != tc.wantLeader {
				t.Errorf("state = (gen %d, leader %q), want (%d, %q)", gen, leader, tc.wantGen, tc.wantLeader)
			}
			if c.leading.Load() != tc.wantLead {
				t.Errorf("leading = %v, want %v", c.leading.Load(), tc.wantLead)
			}
		})
	}
}

// TestPromoteNow covers the promotion edge of the state machine: a
// standby promotes under a fresh fenced generation exactly once per
// silence episode, and promoting an already-leading controller is an
// idempotent no-op.
func TestPromoteNow(t *testing.T) {
	c := newSoloController(t, 1)
	joinGroup(c, []string{"ctrl-0", "ctrl-1"}, 1, "ctrl-0", 3, false)

	gen := c.PromoteNow()
	if gen != 4 {
		t.Fatalf("promotion gen = %d, want 4", gen)
	}
	if !c.leading.Load() {
		t.Fatal("promoted controller not leading")
	}
	if got := c.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	role := c.Role()
	if !role.IsLeader || role.Leader != "ctrl-1" || role.Gen != 4 {
		t.Fatalf("post-promotion role = %+v", role)
	}
	// Idempotent: a second promotion returns the current generation and
	// does not count another failover.
	if again := c.PromoteNow(); again != 4 {
		t.Fatalf("re-promotion gen = %d, want 4", again)
	}
	if got := c.Failovers(); got != 1 {
		t.Fatalf("failovers after re-promotion = %d, want 1", got)
	}
}

// TestStepDown: a leader that learns of a higher generation from a
// standby's redirect demotes itself; a stale redirect is ignored.
func TestStepDown(t *testing.T) {
	c := newSoloController(t, 1)
	joinGroup(c, []string{"ctrl-0", "ctrl-1"}, 0, "ctrl-0", 5, true)

	// A redirect at or below our generation while leading is stale.
	c.stepDown(&core.NotLeaderError{Leader: "ctrl-1", Gen: 5})
	if !c.leading.Load() {
		t.Fatal("leader stepped down on a stale redirect")
	}
	c.stepDown(&core.NotLeaderError{Leader: "ctrl-1", Gen: 8})
	if c.leading.Load() {
		t.Fatal("leader ignored a higher-generation redirect")
	}
	role := c.Role()
	if role.Leader != "ctrl-1" || role.Gen != 8 {
		t.Fatalf("post-stepdown role = %+v", role)
	}
}

// TestShardMapPartitioning pins the shard-map invariants: shardFor is
// deterministic, every registered job lives in exactly one shard, and
// jobs spread across shards rather than collapsing onto one.
func TestShardMapPartitioning(t *testing.T) {
	const shards, jobs = 4, 64
	c := newSoloController(t, shards)
	for i := 0; i < jobs; i++ {
		if err := c.RegisterJob(core.JobID(fmt.Sprintf("job-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	perShard := make([]int, shards)
	seen := make(map[core.JobID]int)
	for si, sh := range c.shards {
		sh.mu.Lock()
		for job := range sh.jobs {
			if prev, dup := seen[job]; dup {
				t.Errorf("job %s owned by shards %d and %d", job, prev, si)
			}
			seen[job] = si
			perShard[si]++
		}
		sh.mu.Unlock()
	}
	if len(seen) != jobs {
		t.Fatalf("shards hold %d jobs, want %d", len(seen), jobs)
	}
	for job, si := range seen {
		if got := c.shardFor(job); got != c.shards[si] {
			t.Errorf("shardFor(%s) does not resolve to the owning shard", job)
		}
	}
	for si, n := range perShard {
		if n == jobs {
			t.Errorf("shard %d owns every job; hashing degenerate", si)
		}
	}
	// Deregistration fully evicts the job from its shard.
	if err := c.DeregisterJob("job-0"); err != nil {
		t.Fatal(err)
	}
	sh := c.shardFor("job-0")
	sh.mu.Lock()
	_, still := sh.jobs["job-0"]
	sh.mu.Unlock()
	if still {
		t.Fatal("deregistered job still present in its shard")
	}
}
