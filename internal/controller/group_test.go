package controller_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/clock"
	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/persist"
	"jiffy/internal/server"
)

// groupRig is a replicated controller group with live memory servers,
// driven in-process under a virtual clock.
type groupRig struct {
	ctrls   []*controller.Controller
	addrs   []string
	servers []*server.Server
	vclock  *clock.Virtual
	store   *persist.MemStore
}

var groupSeq int

func newGroupRig(t *testing.T, cfg core.Config, members, numServers, blocksPerServer int) *groupRig {
	t.Helper()
	groupSeq++
	seq := groupSeq
	r := &groupRig{
		store:  persist.NewMemStore(),
		vclock: clock.NewVirtual(time.Unix(0, 0)),
	}
	for i := 0; i < members; i++ {
		ctrl, err := controller.New(controller.Options{
			Config:        cfg,
			Persist:       r.store,
			Clock:         r.vclock,
			DisableExpiry: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := ctrl.Listen(fmt.Sprintf("mem://group-%d-ctrl-%d", seq, i))
		if err != nil {
			t.Fatal(err)
		}
		r.ctrls = append(r.ctrls, ctrl)
		r.addrs = append(r.addrs, addr)
	}
	// Standbys first, leader last, so the leader's first pulse finds
	// them listening.
	for i := 1; i < members; i++ {
		r.ctrls[i].ConfigureGroup(r.addrs, i, 0)
	}
	r.ctrls[0].ConfigureGroup(r.addrs, 0, 0)

	for i := 0; i < numServers; i++ {
		srv, err := server.New(server.Options{
			Config:          cfg,
			ControllerAddrs: r.addrs,
			Persist:         r.store,
			Clock:           r.vclock,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Listen(fmt.Sprintf("mem://group-%d-srv-%d", seq, i)); err != nil {
			t.Fatal(err)
		}
		if err := srv.Register(blocksPerServer); err != nil {
			t.Fatal(err)
		}
		r.servers = append(r.servers, srv)
	}
	t.Cleanup(func() {
		for _, s := range r.servers {
			s.Close()
		}
		for _, c := range r.ctrls {
			c.Close()
		}
	})
	return r
}

// TestGroupReplicationEquality: because a mutating RPC is acked only
// after the op-log reached every live standby, the standbys' metadata
// equals the leader's after every acked call — jobs, prefixes, quotas
// and partition maps alike. A promoted standby then serves the same
// namespace without ever having talked to the old leader's clients.
func TestGroupReplicationEquality(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Hour
	r := newGroupRig(t, cfg, 3, 2, 32)

	c, err := client.Dial(context.Background(), client.WithControllers(r.addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	const jobs = 3
	var wantKeys []string
	for j := 0; j < jobs; j++ {
		job := core.JobID(fmt.Sprintf("eq%d", j))
		if err := c.RegisterJob(ctx, job); err != nil {
			t.Fatal(err)
		}
		path := core.Path(string(job)).MustChild("kv")
		if _, _, err := c.CreatePrefix(ctx, path, nil, core.DSKV, 2, 0); err != nil {
			t.Fatal(err)
		}
		kv, err := c.OpenKV(ctx, path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("%s-k%d", job, i)
			if err := kv.Put(ctx, key, []byte(key)); err != nil {
				t.Fatal(err)
			}
			wantKeys = append(wantKeys, key)
		}
	}
	if err := c.SetQuota(ctx, "eq0", core.Quota{MemoryBytes: 1 << 30}); err != nil {
		t.Fatal(err)
	}

	// Every member holds the same metadata, not just the leader.
	want := r.ctrls[0].Stats()
	for i, ctrl := range r.ctrls[1:] {
		got := ctrl.Stats()
		if got.Jobs != want.Jobs || got.Prefixes != want.Prefixes {
			t.Fatalf("standby %d = %d jobs / %d prefixes, leader %d / %d",
				i+1, got.Jobs, got.Prefixes, want.Jobs, want.Prefixes)
		}
		for j := 0; j < jobs; j++ {
			job := core.JobID(fmt.Sprintf("eq%d", j))
			lp, err := r.ctrls[0].ListPrefixes(job)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := ctrl.ListPrefixes(job)
			if err != nil {
				t.Fatalf("standby %d list %s: %v", i+1, job, err)
			}
			if len(lp.Prefixes) != len(sp.Prefixes) {
				t.Fatalf("standby %d lists %d prefixes for %s, leader %d",
					i+1, len(sp.Prefixes), job, len(lp.Prefixes))
			}
			for k := range lp.Prefixes {
				l, s := lp.Prefixes[k], sp.Prefixes[k]
				if l.Path != s.Path || l.Type != s.Type || l.Blocks != s.Blocks {
					t.Fatalf("standby %d prefix %v diverges from leader %v", i+1, s, l)
				}
			}
		}
	}

	// Kill the leader; promote the first standby explicitly.
	r.ctrls[0].Close()
	if gen := r.ctrls[1].PromoteNow(); gen != 2 {
		t.Fatalf("promotion gen = %d, want 2", gen)
	}

	// The same client keeps working: its next control call re-homes
	// onto the new leader, and every acked write is still reachable
	// through the replicated metadata.
	for j := 0; j < jobs; j++ {
		job := core.JobID(fmt.Sprintf("eq%d", j))
		kv, err := c.OpenKV(ctx, core.Path(string(job)).MustChild("kv"))
		if err != nil {
			t.Fatalf("post-failover open %s: %v", job, err)
		}
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("%s-k%d", job, i)
			v, err := kv.Get(ctx, key)
			if err != nil || string(v) != key {
				t.Fatalf("acked write %s lost across failover: %q, %v", key, v, err)
			}
		}
	}
	// The rebuilt allocator still places new chains correctly.
	if _, _, err := c.CreatePrefix(ctx, "eq0/fresh", nil, core.DSQueue, 1, 0); err != nil {
		t.Fatalf("post-failover create: %v", err)
	}
	q, err := c.OpenQueue(ctx, "eq0/fresh")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(ctx, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	role, err := c.ControllerRole(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if role.Leader != r.addrs[1] || role.Gen != 2 {
		t.Fatalf("post-failover role = %+v, want leader %s gen 2", role, r.addrs[1])
	}
}

// TestGroupFailoverDetection drives the suspicion-window failover on a
// virtual clock: when the leader's stream goes silent, the first
// standby promotes itself after one window, and a lower-ranked standby
// would only act after a proportionally longer silence.
func TestGroupFailoverDetection(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Hour
	cfg.HeartbeatInterval = 50 * time.Millisecond
	cfg.SuspicionWindow = 200 * time.Millisecond
	r := newGroupRig(t, cfg, 3, 1, 16)

	// While the leader pulses, nobody promotes.
	r.vclock.Advance(cfg.SuspicionWindow)
	r.ctrls[0].PulseNow()
	if r.ctrls[1].CheckLeaderNow() {
		t.Fatal("standby promoted under a live leader")
	}

	// Silence the leader. Rank 1 (ctrl 2) must hold back at one
	// window while rank 0 (ctrl 1) is entitled to act.
	r.ctrls[0].Close()
	r.vclock.Advance(cfg.SuspicionWindow + time.Millisecond)
	if r.ctrls[2].CheckLeaderNow() {
		t.Fatal("second standby promoted inside the first standby's window")
	}
	if !r.ctrls[1].CheckLeaderNow() {
		t.Fatal("first standby did not promote after the suspicion window")
	}
	if r.ctrls[1].Failovers() != 1 {
		t.Fatalf("failovers = %d", r.ctrls[1].Failovers())
	}
	role := r.ctrls[1].Role()
	if !role.IsLeader || role.Gen != 2 {
		t.Fatalf("post-detection role = %+v", role)
	}
}
