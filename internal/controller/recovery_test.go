package controller_test

import (
	"errors"
	"testing"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/persist"
	"jiffy/internal/proto"
	"jiffy/internal/server"
)

// recoveryCtrl boots a controller with heartbeat detection configured
// on a virtual clock, plus n servers whose own heartbeat workers are
// off — the tests beat manually, so every detection step is explicit.
func recoveryCtrl(t *testing.T, vclock clock.Clock, n int, blocks ...int) (
	*controller.Controller, []*server.Server) {
	t.Helper()
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.HeartbeatInterval = time.Second
	cfg.SuspicionWindow = 5 * time.Second
	store := persist.NewMemStore() // shared, like a real cluster's persist tier
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Persist: store, DisableExpiry: true, Clock: vclock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })
	addr, err := ctrl.Listen("mem://recovery-ctrl-" + t.Name())
	if err != nil {
		t.Fatal(err)
	}
	srvCfg := cfg
	srvCfg.HeartbeatInterval = 0 // no background beats; tests drive HeartbeatNow
	srvCfg.SuspicionWindow = 0
	var srvs []*server.Server
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Options{Config: srvCfg, ControllerAddr: addr, Persist: store})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		if _, err := srv.Listen("mem://recovery-srv-" + t.Name() + "-" + string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
		cap := 8
		if i < len(blocks) {
			cap = blocks[i]
		}
		if err := srv.Register(cap); err != nil {
			t.Fatal(err)
		}
		srvs = append(srvs, srv)
	}
	return ctrl, srvs
}

// TestHeartbeatDetectionAndRevival walks the failure detector's full
// life cycle: a server that stops beating is declared dead after the
// suspicion window and evicted from the membership; its next heartbeat
// is rejected with ErrNotFound, which makes the server re-register —
// rejoining the membership with fresh capacity and a new epoch.
func TestHeartbeatDetectionAndRevival(t *testing.T) {
	vclock := clock.NewVirtual(time.Unix(0, 0))
	ctrl, srvs := recoveryCtrl(t, vclock, 2, 8, 8)
	a, b := srvs[0], srvs[1]
	epoch0 := ctrl.MembershipEpoch()

	// A beat from an address that never registered is rejected.
	if _, err := ctrl.Heartbeat("mem://recovery-nobody"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("heartbeat from unknown server = %v, want ErrNotFound", err)
	}

	// Only A beats across the suspicion window: B is declared dead.
	vclock.Advance(6 * time.Second)
	if err := a.HeartbeatNow(); err != nil {
		t.Fatal(err)
	}
	dead := ctrl.CheckLivenessNow()
	if len(dead) != 1 || dead[0] != b.Addr() {
		t.Fatalf("liveness scan = %v, want [%s]", dead, b.Addr())
	}
	if !ctrl.ServerDead(b.Addr()) || ctrl.ServerDead(a.Addr()) {
		t.Fatalf("dead/live flags wrong: B dead=%v A dead=%v",
			ctrl.ServerDead(b.Addr()), ctrl.ServerDead(a.Addr()))
	}
	if s := ctrl.Stats(); s.Servers != 1 || s.TotalBlocks != 8 {
		t.Fatalf("membership after death: %+v", s)
	}
	if e := ctrl.MembershipEpoch(); e != epoch0+1 {
		t.Fatalf("epoch after death = %d, want %d", e, epoch0+1)
	}
	// The scan is idempotent: no double declaration.
	if again := ctrl.CheckLivenessNow(); len(again) != 0 {
		t.Fatalf("second scan declared %v dead again", again)
	}

	// B comes back: its heartbeat is rejected, so it re-registers its
	// stored capacity and rejoins.
	if err := b.HeartbeatNow(); err != nil {
		t.Fatalf("revival heartbeat: %v", err)
	}
	if ctrl.ServerDead(b.Addr()) {
		t.Fatal("server still dead after re-registration")
	}
	if s := ctrl.Stats(); s.Servers != 2 || s.TotalBlocks != 16 {
		t.Fatalf("membership after revival: %+v", s)
	}
	if e := ctrl.MembershipEpoch(); e != epoch0+2 {
		t.Fatalf("epoch after revival = %d, want %d", e, epoch0+2)
	}
	if _, ok := ctrl.LastBeat(b.Addr()); !ok {
		t.Fatal("revived server has no tracked beat")
	}
}

// TestDrainServerMigratesData drains the only server hosting an
// unreplicated block: the block migrates by snapshot to the remaining
// server with its data intact, the source copy is deleted, and the
// drained server leaves the membership. A second drain is a typed
// error.
func TestDrainServerMigratesData(t *testing.T) {
	vclock := clock.NewVirtual(time.Unix(0, 0))
	ctrl, srvs := recoveryCtrl(t, vclock, 2, 8, 4)
	src, dst := srvs[0], srvs[1] // most-free placement picks src (8 > 4)

	ctrl.RegisterJob("j")
	resp, err := ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/kv", Type: core.DSKV})
	if err != nil {
		t.Fatal(err)
	}
	oldID := resp.Map.Blocks[0].Info.ID
	if got := resp.Map.Blocks[0].Info.Server; got != src.Addr() {
		t.Fatalf("precondition: block on %s, want %s", got, src.Addr())
	}
	if _, err := src.Store().Apply(oldID, core.OpPut,
		[][]byte{[]byte("k"), []byte("v")}); err != nil {
		t.Fatal(err)
	}

	migrated, err := ctrl.DrainServer(src.Addr())
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if migrated != 1 {
		t.Fatalf("drain migrated %d entries, want 1", migrated)
	}
	open, err := ctrl.Open("j/kv")
	if err != nil {
		t.Fatal(err)
	}
	e := open.Map.Blocks[0]
	if e.Lost || e.Info.Server != dst.Addr() {
		t.Fatalf("entry after drain: %+v, want healthy on %s", e, dst.Addr())
	}
	if v, err := dst.Store().Apply(e.Info.ID, core.OpGet, [][]byte{[]byte("k")}); err != nil || string(v[0]) != "v" {
		t.Fatalf("migrated data unreadable on destination: %v %v", v, err)
	}
	// The source copy is gone, and so is the server's membership.
	if _, err := src.Store().Apply(oldID, core.OpGet, [][]byte{[]byte("k")}); err == nil {
		t.Error("source block still readable after drain")
	}
	if s := ctrl.Stats(); s.Servers != 1 {
		t.Fatalf("drained server still in the pool: %+v", s)
	}
	if _, err := ctrl.DrainServer(src.Addr()); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("second drain = %v, want ErrNotFound", err)
	}
}

// TestDeadServerBlockRecoveredFromPersistTier kills the sole host of
// an unreplicated block whose prefix has been flushed: the repair
// rebuilds the block on a healthy server from the flushed snapshot
// instead of marking it lost.
func TestDeadServerBlockRecoveredFromPersistTier(t *testing.T) {
	vclock := clock.NewVirtual(time.Unix(0, 0))
	ctrl, srvs := recoveryCtrl(t, vclock, 2, 8, 4)
	doomed, survivor := srvs[0], srvs[1] // most-free placement picks doomed

	ctrl.RegisterJob("j")
	resp, err := ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/kv", Type: core.DSKV})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Map.Blocks[0].Info.Server; got != doomed.Addr() {
		t.Fatalf("precondition: block on %s, want %s", got, doomed.Addr())
	}
	if _, err := doomed.Store().Apply(resp.Map.Blocks[0].Info.ID, core.OpPut,
		[][]byte{[]byte("k"), []byte("precious")}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.FlushPrefix("j/kv", "ckpt/recovery"); err != nil {
		t.Fatal(err)
	}

	doomed.Close()
	if !ctrl.FailServer(doomed.Addr()) {
		t.Fatal("FailServer reported the server already dead")
	}
	open, err := ctrl.Open("j/kv")
	if err != nil {
		t.Fatal(err)
	}
	e := open.Map.Blocks[0]
	if e.Lost {
		t.Fatal("flushed block marked lost instead of recovered")
	}
	if e.Info.Server != survivor.Addr() {
		t.Fatalf("recovered block on %s, want %s", e.Info.Server, survivor.Addr())
	}
	v, err := survivor.Store().Apply(e.Info.ID, core.OpGet, [][]byte{[]byte("k")})
	if err != nil || string(v[0]) != "precious" {
		t.Fatalf("recovered data unreadable: %v %v", v, err)
	}
}
