package controller

import (
	"errors"

	"jiffy/internal/core"
	"jiffy/internal/ds"
)

// Chain replication orchestration (§4.2.2: "Jiffy supports chain
// replication at block granularity"). When Config.ChainLength > 1,
// every logical block of a data structure is backed by a chain of
// physical blocks: the controller allocates the whole chain at
// provision/scale time (the allocator's least-loaded placement spreads
// members across servers), installs the same partition role on every
// member with the chain recorded, and clients write at the head and
// read at the tail. Memory-server-side propagation lives in
// internal/server/replication.go.

// allocateChains allocates n logical blocks × chain length physical
// blocks and groups them into chains. The first member of each chain
// is its head.
func (c *Controller) allocateChains(n int) ([]core.ReplicaChain, error) {
	cl := c.cfg.ChainLength
	if cl < 1 {
		cl = 1
	}
	infos, err := c.alloc.Allocate(n * cl)
	if err != nil {
		return nil, err
	}
	chains := make([]core.ReplicaChain, n)
	for i := 0; i < n; i++ {
		chains[i] = core.ReplicaChain(infos[i*cl : (i+1)*cl])
	}
	return chains, nil
}

// chainField returns the chain to record in metadata and on blocks:
// nil for the unreplicated common case (so single-replica deployments
// carry no extra bytes anywhere).
func chainField(chain core.ReplicaChain) core.ReplicaChain {
	if len(chain) <= 1 {
		return nil
	}
	return chain
}

// createChainOnServers installs the same partition role on every chain
// member. On failure the created members are deleted and the chain's
// blocks must be freed by the caller.
func (c *Controller) createChainOnServers(chain core.ReplicaChain, path core.Path,
	t core.DSType, chunk int, slots []ds.SlotRange) error {
	for i, info := range chain {
		if err := c.createBlockOnServer(info, path, t, chunk, slots, chainField(chain)); err != nil {
			for _, done := range chain[:i] {
				c.deleteBlockOnServer(done)
			}
			return err
		}
	}
	return nil
}

// provisionChain allocates one chain and installs it on its servers,
// retrying with a fresh allocation when a chosen server turns out to
// be unreachable. The unreachable server is evicted — free blocks
// removed from the allocator, membership epoch bumped, its chains
// repaired asynchronously — so the retry deterministically lands on
// healthy servers instead of looping on the dead one (the allocator's
// most-free placement would otherwise keep choosing it: a dead server
// stops consuming blocks, so its free count only looks better).
func (c *Controller) provisionChain(path core.Path, t core.DSType, chunk int,
	slots []ds.SlotRange) (core.ReplicaChain, error) {
	for {
		chains, err := c.allocateChains(1)
		if err != nil {
			return nil, err
		}
		err = c.createChainOnServers(chains[0], path, t, chunk, slots)
		if err == nil {
			return chains[0], nil
		}
		c.alloc.Free(chains[0])
		var ue *serverUnreachableError
		if !errors.As(err, &ue) {
			return nil, err
		}
		c.evictServer(ue.addr)
	}
}

// deleteChainOnServers removes every member of an entry's chain.
func (c *Controller) deleteChainOnServers(e ds.PartitionEntry) {
	for _, info := range e.Replicas() {
		c.deleteBlockOnServer(info)
	}
}

// entryFor builds the partition-map entry for a chain.
func entryFor(chain core.ReplicaChain, chunk int, slots []ds.SlotRange) ds.PartitionEntry {
	return ds.PartitionEntry{
		Info:  chain.Head(),
		Chunk: chunk,
		Slots: slots,
		Chain: chainField(chain),
	}
}

// setNextOnChain seals a queue tail by linking it to the successor
// chain's head. The seal is sent to the tail's chain head only: it is
// a sequenced mutation, so the server propagates it down the chain in
// order with the enqueues that preceded it.
func (c *Controller) setNextOnChain(tail ds.PartitionEntry, next core.BlockInfo) error {
	return c.setNextOnServer(tail.WriteTarget(), next)
}
