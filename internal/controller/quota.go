package controller

import (
	"fmt"

	"jiffy/internal/core"
	"jiffy/internal/hierarchy"
	"jiffy/internal/proto"
)

// SetQuota registers a resource quota on the prefix at path. The
// memory dimension constrains the prefix's subtree at allocation time
// (CreatePrefix/ScaleUp). Rate dimensions are meaningful on the job
// root — the tenant boundary the servers key admission on — and are
// pushed to every registered memory server; servers that join later
// receive the quota at registration. A zero quota clears the
// registration.
func (c *Controller) SetQuota(path core.Path, q core.Quota) error {
	if q.OpsPerSec < 0 || q.BytesPerSec < 0 || q.MemoryBytes < 0 || q.Weight < 0 {
		return fmt.Errorf("controller: quota dimensions must be >= 0, got %+v", q)
	}
	var isRoot bool
	err := c.withJob(path.Job(), func(h *hierarchy.Hierarchy) error {
		n, err := h.Resolve(path)
		if err != nil {
			return err
		}
		n.Quota = q
		isRoot = n == h.Root()
		c.commitNodeLocked(n.Job, n)
		return nil
	})
	if err != nil {
		return err
	}
	if isRoot {
		c.setTenantQuota(string(path.Job()), q)
	}
	return nil
}

// setTenantQuota records a job-root quota and fans it out to every
// registered memory server. Push failures are logged and tolerated: an
// unreachable server is either dead (its blocks will be repaired away)
// or will re-register, which replays the quota table.
func (c *Controller) setTenantQuota(tenant string, q core.Quota) {
	c.qMu.Lock()
	if q.IsZero() {
		delete(c.tenantQuotas, tenant)
	} else {
		c.tenantQuotas[tenant] = q
	}
	c.qMu.Unlock()
	for _, addr := range c.alloc.Servers() {
		if err := c.setTenantQuotaOnServer(addr, tenant, q); err != nil {
			c.log.Warn("controller: tenant quota push failed",
				"server", addr, "tenant", tenant, "err", err)
		}
	}
}

// pushTenantQuotas replays the full tenant quota table to one server
// (registration-time catch-up).
func (c *Controller) pushTenantQuotas(addr string) {
	c.qMu.Lock()
	quotas := make(map[string]core.Quota, len(c.tenantQuotas))
	for t, q := range c.tenantQuotas {
		quotas[t] = q
	}
	c.qMu.Unlock()
	for t, q := range quotas {
		if err := c.setTenantQuotaOnServer(addr, t, q); err != nil {
			c.log.Warn("controller: tenant quota replay failed",
				"server", addr, "tenant", t, "err", err)
		}
	}
}

// setTenantQuotaOnServer installs one tenant's rate quota on a memory
// server's admission gate.
func (c *Controller) setTenantQuotaOnServer(addr, tenant string, q core.Quota) error {
	var resp proto.SetTenantQuotaResp
	return c.callServer(addr, proto.MethodSetTenantQuota,
		proto.SetTenantQuotaReq{Tenant: tenant, Quota: q}, &resp)
}

// checkMemoryQuotaLocked verifies that adding addBlocks physical
// blocks (chain replicas counted individually) under n stays within
// every governing memory quota: n's own and each quota-bearing
// ancestor's subtree budget. Caller holds the shard lock.
func (c *Controller) checkMemoryQuotaLocked(n *hierarchy.Node, addBlocks int) error {
	for _, owner := range n.QuotaOwners() {
		need := int64(owner.SubtreePhysicalBlocks()+addBlocks) * int64(c.cfg.BlockSize)
		if need > owner.Quota.MemoryBytes {
			return fmt.Errorf("controller: prefix %q memory quota %dB exceeded (allocation needs %dB): %w",
				owner.CanonicalPath(), owner.Quota.MemoryBytes, need, core.ErrQuotaExceeded)
		}
	}
	return nil
}

// releaseQuotaLocked drops a node's quota registration when its lease
// is lost (§3.2's reclaim extends to the resource envelope: an expired
// tenant must not keep rate reservations on the servers). Caller holds
// the shard lock; the broadcast reuses the server pool like
// releaseBlocksLocked does.
func (c *Controller) releaseQuotaLocked(h *hierarchy.Hierarchy, n *hierarchy.Node) {
	if n.Quota.IsZero() {
		return
	}
	n.Quota = core.Quota{}
	if n == h.Root() {
		c.setTenantQuota(string(n.Job), core.Quota{})
	}
}
