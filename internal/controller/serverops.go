package controller

import (
	"errors"
	"fmt"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/proto"
)

// serverUnreachableError marks an RPC failure as connectivity-class:
// the server could not be dialed, or its session broke mid-call. It is
// evidence of server death — scale-ups use it to evict the server and
// retry elsewhere (see provisionChain) — as opposed to an error the
// server itself returned, which proves it is alive.
type serverUnreachableError struct {
	addr string
	err  error
}

func (e *serverUnreachableError) Error() string {
	return fmt.Sprintf("controller: server %s unreachable: %v", e.addr, e.err)
}

func (e *serverUnreachableError) Unwrap() error { return e.err }

// callServer performs one gob RPC against a memory server,
// classifying dial failures and broken sessions as
// serverUnreachableError (and dropping the broken pooled session so
// the next call re-dials instead of reusing a dead connection).
func (c *Controller) callServer(addr string, method uint16, req, resp interface{}) error {
	cl, err := c.servers.Get(addr)
	if err != nil {
		return &serverUnreachableError{addr: addr, err: err}
	}
	if err := cl.CallGob(method, req, resp); err != nil {
		if errors.Is(err, core.ErrClosed) {
			c.servers.Drop(addr)
			return &serverUnreachableError{addr: addr, err: err}
		}
		return fmt.Errorf("controller: %s method %#x: %w", addr, method, err)
	}
	return nil
}

// createBlockOnServer installs a partition for one block.
func (c *Controller) createBlockOnServer(info core.BlockInfo, path core.Path,
	t core.DSType, chunk int, slots []ds.SlotRange, chain core.ReplicaChain) error {
	req := proto.CreateBlockReq{
		Block:    info.ID,
		Path:     path,
		Type:     t,
		Capacity: c.cfg.BlockSize,
		NumSlots: c.cfg.NumHashSlots,
		Slots:    slots,
		Chunk:    chunk,
		Chain:    chain,
	}
	var resp proto.CreateBlockResp
	err := c.callServer(info.Server, proto.MethodCreateBlock, req, &resp)
	if errors.Is(err, core.ErrExists) {
		// The server holds a partition under an ID the committed
		// metadata says is free: an orphan from a previous leader's
		// uncommitted work (a chain splice cut short by the leader's
		// death never reaches the op-log, but its replacement block
		// survives on the server). The replicated metadata is
		// authoritative — reclaim the orphan and install the new
		// partition in its place.
		c.log.Warn("controller: reclaiming orphan block",
			"block", info.ID, "on", info.Server)
		var dresp proto.DeleteBlockResp
		if derr := c.callServer(info.Server, proto.MethodDeleteBlock,
			proto.DeleteBlockReq{Block: info.ID}, &dresp); derr != nil {
			return err
		}
		err = c.callServer(info.Server, proto.MethodCreateBlock, req, &resp)
	}
	return err
}

// deleteBlockOnServer removes a block's partition; failures are logged
// (the server may already be gone) and the block is still freed. Any
// tier record for the member is dropped with it — a deleted block's
// tier object must never be resurrected by a later repair, especially
// since block IDs are recycled through the free list.
func (c *Controller) deleteBlockOnServer(info core.BlockInfo) {
	c.dropTierRecord(info)
	var resp proto.DeleteBlockResp
	err := c.callServer(info.Server, proto.MethodDeleteBlock,
		proto.DeleteBlockReq{Block: info.ID}, &resp)
	if err != nil {
		c.log.Debug("controller: delete block failed", "block", info, "err", err)
	}
}

// setNextOnServer links a queue segment to its successor.
func (c *Controller) setNextOnServer(tail core.BlockInfo, next core.BlockInfo) error {
	var resp proto.SetNextResp
	return c.callServer(tail.Server, proto.MethodSetNext,
		proto.SetNextReq{Block: tail.ID, Next: next}, &resp)
}

// exportSlotsOnServer removes the given slot ranges from one replica
// of a KV block, returning the removed pairs.
func (c *Controller) exportSlotsOnServer(member core.BlockInfo, ranges []ds.SlotRange) ([]ds.KVEntry, error) {
	var resp proto.ExportSlotsResp
	err := c.callServer(member.Server, proto.MethodExportSlots,
		proto.ExportSlotsReq{Block: member.ID, Ranges: ranges}, &resp)
	return resp.Entries, err
}

// importEntriesOnServer installs pairs (and range ownership) into one
// replica of a KV block.
func (c *Controller) importEntriesOnServer(member core.BlockInfo, ranges []ds.SlotRange, entries []ds.KVEntry) error {
	var resp proto.ImportEntriesResp
	return c.callServer(member.Server, proto.MethodImportEntries,
		proto.ImportEntriesReq{Block: member.ID, Ranges: ranges, Entries: entries}, &resp)
}

// flushBlockOnServer snapshots a block into the persistent store.
func (c *Controller) flushBlockOnServer(info core.BlockInfo, key string) error {
	var resp proto.FlushBlockResp
	return c.callServer(info.Server, proto.MethodFlushBlock,
		proto.FlushBlockReq{Block: info.ID, Key: key}, &resp)
}

// snapshotBlockOnServer fetches a block's partition snapshot.
func (c *Controller) snapshotBlockOnServer(info core.BlockInfo) ([]byte, error) {
	var resp proto.SnapshotBlockResp
	err := c.callServer(info.Server, proto.MethodSnapshotBlock,
		proto.SnapshotBlockReq{Block: info.ID}, &resp)
	return resp.Snapshot, err
}

// restoreBlockOnServer replaces a block's partition state.
func (c *Controller) restoreBlockOnServer(info core.BlockInfo, snapshot []byte) error {
	var resp proto.RestoreBlockResp
	return c.callServer(info.Server, proto.MethodRestoreBlock,
		proto.RestoreBlockReq{Block: info.ID, Snapshot: snapshot}, &resp)
}

// updateChainOnServer switches one block to a new chain layout under a
// new replication generation (see repair.go).
func (c *Controller) updateChainOnServer(member core.BlockInfo, chain core.ReplicaChain, gen uint64) error {
	var resp proto.UpdateChainResp
	return c.callServer(member.Server, proto.MethodUpdateChain,
		proto.UpdateChainReq{Block: member.ID, Chain: chain, Gen: gen}, &resp)
}

// sealBlockOnServer fences a block against all further writes (reads
// keep serving) — the drain-time barrier taken before a migration
// snapshot, so no acknowledged write can postdate the snapshot.
func (c *Controller) sealBlockOnServer(member core.BlockInfo) error {
	var resp proto.UpdateChainResp
	return c.callServer(member.Server, proto.MethodUpdateChain,
		proto.UpdateChainReq{Block: member.ID, Seal: true}, &resp)
}

// loadBlockOnServer restores a block from the persistent store.
func (c *Controller) loadBlockOnServer(info core.BlockInfo, key string) error {
	var resp proto.LoadBlockResp
	return c.callServer(info.Server, proto.MethodLoadBlock,
		proto.LoadBlockReq{Block: info.ID, Key: key}, &resp)
}
