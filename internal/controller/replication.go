package controller

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/hierarchy"
	"jiffy/internal/proto"
	"jiffy/internal/rpc"
)

// Primary-backup replication of controller metadata (§4.2.1). The
// active controller appends every durable metadata mutation — lease
// grants and renewals, chain commits, tier records, quota changes,
// membership events, repair commits — to a deterministic op-log and
// streams it to the standbys. Ops are enqueued under the shard lock
// (so per-node order is preserved) but sent after the handler's
// dispatch completes, keeping RPCs out of every lock domain; the
// handler still waits for standby acks before answering the client,
// so an acknowledged control operation survives leader failure.
//
// Standbys mirror the hierarchies, tier table, tenant quotas, and
// membership, but not the allocator's free lists: they track only
// each server's contributed block range, and a promoting standby
// rebuilds the free lists as "contributed minus in-use" from its
// replicated partition maps (see leadership.go). That removes any
// cross-shard ordering requirement between allocate and free ops.
//
// A standby that misses the bounded replay window (or joins late, or
// was a deposed leader with a diverged log) is re-bootstrapped with a
// full snapshot on the leader's next pulse. The snapshot is fuzzy —
// the leader does not quiesce — which is safe because the snapshot's
// Seq is read before state capture and every op is idempotent, so
// replaying ops that the snapshot already reflects is harmless.

// opKind enumerates the replicated metadata operations.
type opKind uint8

const (
	opNop opKind = iota
	opRegisterJob
	opDeregisterJob
	opNodeUpsert
	opRemoveNode
	opRenewLease
	opServerRegister
	opServerDead
	opTier
	opServerProbation
)

// replOp is one op-log entry. The struct is flat — gob omits zero
// fields, so each entry carries only what its kind uses.
type replOp struct {
	Kind opKind
	Job  core.JobID
	// RegisterJob
	Lease time.Duration
	Now   time.Time
	// NodeUpsert
	Node nodeImage
	// RemoveNode
	Name string
	// RenewLease
	Paths []core.Path
	// ServerRegister / ServerDead / ServerProbation
	Addr      string
	NumBlocks int
	FirstID   core.BlockID
	// ServerProbation: true places Addr on probation, false lifts it.
	On bool
	// Tier
	Tier proto.ReportTierReq
}

// contribRange records one server's contributed block range.
type contribRange struct {
	First core.BlockID
	N     int
}

// groupImage is the full-state bootstrap snapshot.
type groupImage struct {
	Gen     uint64
	Seq     uint64
	Epoch   uint64
	NextID  core.BlockID
	Jobs    []jobImage
	Contrib []contribImage
	Dead    []string
	// Probation lists servers on gray-failure probation; a promoting
	// standby re-suspends them in its rebuilt allocator.
	Probation []string
	Tenants   map[string]core.Quota
	Tiers     []tierImage
}

type contribImage struct {
	Addr  string
	First core.BlockID
	N     int
}

type tierImage struct {
	Info core.BlockInfo
	Path core.Path
	Key  string
	Gen  uint64
}

// replRingMax bounds the replay ring. A standby whose ack position
// falls off the ring is re-bootstrapped instead of streamed to.
const replRingMax = 4096

// replicator owns the leader-side op-log stream.
type replicator struct {
	c *Controller
	// on is the fast-path emit gate: true only while this controller
	// leads a group with at least one standby.
	on atomic.Bool

	mu        sync.Mutex
	cond      *sync.Cond
	gen       uint64
	seq       uint64   // last assigned sequence number
	ringStart uint64   // sequence number of ring[0]
	ring      [][]byte // encoded ops, ring[i] has seq ringStart+i
	peers     []*standbyPeer
	sending   bool
}

type standbyPeer struct {
	addr  string
	acked uint64
	lost  bool // needs a bootstrap before streaming can resume
}

func newReplicator(c *Controller) *replicator {
	r := &replicator{c: c}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// lead switches the replicator into leader mode at gen. Every standby
// starts lost: sequence numbers from different leaders don't align, so
// the first pulse bootstraps each standby to this leader's stream.
func (r *replicator) lead(gen, seq uint64, peers []string) {
	r.mu.Lock()
	r.gen = gen
	r.seq = seq
	r.ringStart = seq + 1
	r.ring = nil
	r.peers = nil
	for _, addr := range peers {
		r.peers = append(r.peers, &standbyPeer{addr: addr, lost: true})
	}
	r.mu.Unlock()
	r.on.Store(len(peers) > 0)
}

// stop turns the replicator off (demotion or close).
func (r *replicator) stop() {
	r.on.Store(false)
	r.mu.Lock()
	r.peers = nil
	r.ring = nil
	r.mu.Unlock()
}

// emit appends one op to the log. Called with shard (or other state)
// locks held — it only assigns a sequence number and buffers; the
// network send happens in flush, after the caller's locks are gone.
func (r *replicator) emit(op replOp) {
	if !r.on.Load() {
		return
	}
	data, err := rpc.Marshal(op)
	if err != nil {
		r.c.log.Error("controller: replication op encode failed", "kind", op.Kind, "err", err)
		return
	}
	r.mu.Lock()
	r.seq++
	if len(r.ring) == 0 {
		r.ringStart = r.seq
	}
	r.ring = append(r.ring, data)
	if len(r.ring) > replRingMax {
		drop := len(r.ring) - replRingMax
		r.ring = r.ring[drop:]
		r.ringStart += uint64(drop)
	}
	r.mu.Unlock()
}

// flush streams every pending op to the standbys and returns once all
// live standbys have acked the log through the caller's enqueue point
// (or fallen lost). Concurrent flushes coordinate through a single
// in-flight sender. Returns a *core.NotLeaderError when a standby
// reports a higher generation — the caller was deposed mid-operation
// and must surface the redirect instead of acking the client.
func (r *replicator) flush() error {
	if !r.on.Load() {
		return nil
	}
	r.mu.Lock()
	target := r.seq
	for {
		pending := false
		for _, p := range r.peers {
			if !p.lost && p.acked < target {
				pending = true
				break
			}
		}
		if !pending {
			r.mu.Unlock()
			return nil
		}
		if r.sending {
			r.cond.Wait()
			continue
		}
		r.sending = true
		gen := r.gen
		type sendItem struct {
			p     *standbyPeer
			first uint64
			ops   [][]byte
		}
		var items []sendItem
		for _, p := range r.peers {
			if p.lost || p.acked >= r.seq {
				continue
			}
			if p.acked+1 < r.ringStart {
				// Fell off the replay window; the next pulse bootstraps.
				p.lost = true
				continue
			}
			ops := make([][]byte, 0, r.seq-p.acked)
			for s := p.acked + 1; s <= r.seq; s++ {
				ops = append(ops, r.ring[s-r.ringStart])
			}
			items = append(items, sendItem{p: p, first: p.acked + 1, ops: ops})
		}
		self := r.c.selfAddr()
		r.mu.Unlock()

		var deposed *core.NotLeaderError
		acks := make([]uint64, len(items))
		lost := make([]bool, len(items))
		for i, it := range items {
			var resp proto.CtrlReplicateResp
			err := r.c.callPeer(it.p.addr, proto.MethodCtrlReplicate,
				proto.CtrlReplicateReq{Gen: gen, Leader: self, FirstSeq: it.first, Ops: it.ops}, &resp)
			if err != nil {
				var nl *core.NotLeaderError
				if errors.As(err, &nl) && nl.Gen > gen {
					deposed = nl
				}
				lost[i] = true
				r.c.log.Warn("controller: replication stream to standby failed",
					"standby", it.p.addr, "err", err)
				continue
			}
			acks[i] = resp.AckedSeq
		}

		r.mu.Lock()
		for i, it := range items {
			if lost[i] {
				it.p.lost = true
			} else if acks[i] > it.p.acked {
				it.p.acked = acks[i]
			}
		}
		r.sending = false
		r.cond.Broadcast()
		if deposed != nil {
			r.mu.Unlock()
			r.c.stepDown(deposed)
			return deposed
		}
	}
}

// lag returns the op-log distance between the leader's head and the
// slowest live standby (the jiffy_ctrl_replication_lag_ops gauge). A
// lost standby does not count — its lag is unbounded until bootstrap.
func (r *replicator) lag() int64 {
	if !r.on.Load() {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var worst int64
	for _, p := range r.peers {
		if p.lost {
			continue
		}
		if d := int64(r.seq - p.acked); d > worst {
			worst = d
		}
	}
	return worst
}

// pulseNow is the leader's heartbeat: flush any backlog, re-bootstrap
// lost standbys, and send an empty replicate batch so idle standbys
// keep observing leader liveness.
func (r *replicator) pulseNow() {
	if !r.on.Load() {
		return
	}
	if err := r.flush(); err != nil {
		return // deposed
	}
	r.mu.Lock()
	gen := r.gen
	var lostPeers, livePeers []*standbyPeer
	for _, p := range r.peers {
		if p.lost {
			lostPeers = append(lostPeers, p)
		} else {
			livePeers = append(livePeers, p)
		}
	}
	self := r.c.selfAddr()
	r.mu.Unlock()

	for _, p := range lostPeers {
		img, err := r.c.buildImage()
		if err != nil {
			r.c.log.Error("controller: bootstrap image build failed", "err", err)
			break
		}
		data, err := rpc.Marshal(img)
		if err != nil {
			r.c.log.Error("controller: bootstrap image encode failed", "err", err)
			break
		}
		var resp proto.CtrlBootstrapResp
		err = r.c.callPeer(p.addr, proto.MethodCtrlBootstrap,
			proto.CtrlBootstrapReq{Gen: gen, Leader: self, Image: data}, &resp)
		if err != nil {
			var nl *core.NotLeaderError
			if errors.As(err, &nl) && nl.Gen > gen {
				r.c.stepDown(nl)
				return
			}
			r.c.log.Warn("controller: standby bootstrap failed", "standby", p.addr, "err", err)
			continue
		}
		r.mu.Lock()
		p.acked = img.Seq
		p.lost = false
		r.mu.Unlock()
		r.c.log.Info("controller: standby bootstrapped",
			"standby", p.addr, "seq", img.Seq, "gen", gen)
	}

	for _, p := range livePeers {
		var resp proto.CtrlReplicateResp
		err := r.c.callPeer(p.addr, proto.MethodCtrlReplicate,
			proto.CtrlReplicateReq{Gen: gen, Leader: self, FirstSeq: 0, Ops: nil}, &resp)
		if err != nil {
			var nl *core.NotLeaderError
			if errors.As(err, &nl) && nl.Gen > gen {
				r.c.stepDown(nl)
				return
			}
			r.mu.Lock()
			p.lost = true
			r.mu.Unlock()
		}
	}
	// Catch ops raced in while bootstrapping.
	_ = r.flush()
}

// --- Leader-side image build -------------------------------------------

// buildImage captures a fuzzy full-state snapshot for bootstrap. Seq
// is read before any state, so ops enqueued during the capture replay
// over the snapshot on the standby — idempotently.
func (c *Controller) buildImage() (groupImage, error) {
	img := groupImage{Tenants: make(map[string]core.Quota)}

	c.repl.mu.Lock()
	img.Gen = c.repl.gen
	img.Seq = c.repl.seq
	c.repl.mu.Unlock()

	c.group.mu.Lock()
	img.NextID = c.group.nextID
	for addr, r := range c.group.contrib {
		img.Contrib = append(img.Contrib, contribImage{Addr: addr, First: r.First, N: r.N})
	}
	c.group.mu.Unlock()
	sort.Slice(img.Contrib, func(i, j int) bool { return img.Contrib[i].Addr < img.Contrib[j].Addr })

	img.Epoch = c.memberEpoch.Load()

	c.hbMu.Lock()
	for addr := range c.deadServers {
		img.Dead = append(img.Dead, addr)
	}
	for addr := range c.probation {
		img.Probation = append(img.Probation, addr)
	}
	c.hbMu.Unlock()
	sort.Strings(img.Dead)
	sort.Strings(img.Probation)

	c.qMu.Lock()
	for t, q := range c.tenantQuotas {
		img.Tenants[t] = q
	}
	c.qMu.Unlock()

	c.tiers.mu.Lock()
	for info, rec := range c.tiers.records {
		img.Tiers = append(img.Tiers, tierImage{Info: info, Path: rec.Path, Key: rec.Key, Gen: rec.Gen})
	}
	c.tiers.mu.Unlock()

	for _, sh := range c.shards {
		sh.mu.Lock()
		jobs := make([]core.JobID, 0, len(sh.jobs))
		for j := range sh.jobs {
			jobs = append(jobs, j)
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i] < jobs[j] })
		for _, j := range jobs {
			img.Jobs = append(img.Jobs, dumpJob(j, sh.jobs[j]))
		}
		sh.mu.Unlock()
	}
	return img, nil
}

// --- Standby-side application ------------------------------------------

// applyImage resets the standby's metadata to the snapshot.
func (c *Controller) applyImage(img groupImage) error {
	c.applyMu.Lock()
	defer c.applyMu.Unlock()

	now := c.clk.Now()
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.jobs = make(map[core.JobID]*hierarchy.Hierarchy)
		sh.byServer = make(map[string]map[*hierarchy.Node]core.JobID)
		sh.nodeServers = make(map[*hierarchy.Node][]string)
		sh.mu.Unlock()
	}
	for _, ji := range img.Jobs {
		sh := c.shardFor(ji.Job)
		sh.mu.Lock()
		h, err := restoreJob(ji, now)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		sh.jobs[ji.Job] = h
		h.Walk(func(n *hierarchy.Node) bool {
			sh.reindexNodeLocked(ji.Job, n)
			return true
		})
		sh.mu.Unlock()
	}

	dead := make(map[string]bool, len(img.Dead))
	for _, addr := range img.Dead {
		dead[addr] = true
	}
	c.group.mu.Lock()
	c.group.contrib = make(map[string]contribRange, len(img.Contrib))
	for _, ci := range img.Contrib {
		c.group.contrib[ci.Addr] = contribRange{First: ci.First, N: ci.N}
	}
	c.group.nextID = img.NextID
	c.group.appliedSeq = img.Seq
	c.group.mu.Unlock()

	c.hbMu.Lock()
	c.lastBeat = make(map[string]time.Time)
	c.deadServers = dead
	c.probation = make(map[string]bool, len(img.Probation))
	c.probationStreak = make(map[string]int)
	for _, addr := range img.Probation {
		if !dead[addr] {
			c.probation[addr] = true
		}
	}
	for _, ci := range img.Contrib {
		if !dead[ci.Addr] {
			c.lastBeat[ci.Addr] = now
		}
	}
	c.hbMu.Unlock()
	c.memberEpoch.Store(img.Epoch)

	c.qMu.Lock()
	c.tenantQuotas = make(map[string]core.Quota, len(img.Tenants))
	for t, q := range img.Tenants {
		c.tenantQuotas[t] = q
	}
	c.qMu.Unlock()

	c.tiers.mu.Lock()
	c.tiers.records = make(map[core.BlockInfo]tierRecord, len(img.Tiers))
	for _, ti := range img.Tiers {
		c.tiers.records[ti.Info] = tierRecord{Path: ti.Path, Key: ti.Key, Gen: ti.Gen}
	}
	c.tiers.mu.Unlock()
	return nil
}

// applyOp applies one op-log entry on a standby. Application is
// idempotent: replay over a snapshot that already reflects the op must
// leave the same state (membership-epoch over-counting aside, which is
// safe — the epoch only needs to stay ahead of what servers observed).
func (c *Controller) applyOp(op replOp) {
	switch op.Kind {
	case opRegisterJob:
		sh := c.shardFor(op.Job)
		sh.mu.Lock()
		if _, exists := sh.jobs[op.Job]; !exists {
			lease := op.Lease
			if lease <= 0 {
				lease = c.cfg.LeaseDuration
			}
			sh.jobs[op.Job] = hierarchy.New(op.Job, lease, op.Now)
		}
		sh.mu.Unlock()

	case opDeregisterJob:
		sh := c.shardFor(op.Job)
		sh.mu.Lock()
		if h, ok := sh.jobs[op.Job]; ok {
			sh.dropJobIndexLocked(h)
			delete(sh.jobs, op.Job)
		}
		sh.mu.Unlock()
		c.setTenantQuotaLocal(string(op.Job), core.Quota{})

	case opNodeUpsert:
		if err := c.applyNodeUpsert(op.Job, op.Node, op.Now); err != nil {
			c.log.Warn("controller: replicated node upsert failed",
				"job", op.Job, "node", op.Node.Name, "err", err)
		}

	case opRemoveNode:
		sh := c.shardFor(op.Job)
		sh.mu.Lock()
		if h, ok := sh.jobs[op.Job]; ok {
			if n, ok := h.Lookup(op.Name); ok {
				sh.dropNodeIndexLocked(n)
				if err := h.Remove(n.Name); err != nil {
					// Guarded removal (e.g. children appeared from a
					// raced upsert): reindex and leave the node.
					sh.reindexNodeLocked(op.Job, n)
				}
			}
		}
		sh.mu.Unlock()

	case opRenewLease:
		for _, p := range op.Paths {
			sh := c.shardFor(p.Job())
			sh.mu.Lock()
			if h, ok := sh.jobs[p.Job()]; ok {
				_, _ = h.Renew(p, op.Now)
			}
			sh.mu.Unlock()
		}

	case opServerRegister:
		c.group.mu.Lock()
		c.group.contrib[op.Addr] = contribRange{First: op.FirstID, N: op.NumBlocks}
		if end := op.FirstID + core.BlockID(op.NumBlocks); end > c.group.nextID {
			c.group.nextID = end
		}
		c.group.mu.Unlock()
		c.noteServerAlive(op.Addr)
		c.memberEpoch.Add(1)

	case opServerDead:
		c.hbMu.Lock()
		already := c.deadServers[op.Addr]
		c.deadServers[op.Addr] = true
		delete(c.lastBeat, op.Addr)
		c.hbMu.Unlock()
		if !already {
			c.memberEpoch.Add(1)
		}

	case opTier:
		c.applyTierReport(op.Tier)

	case opServerProbation:
		c.applyProbationLocal(op.Addr, op.On)
	}
}

// applyNodeUpsert installs a replicated node image: create-or-update
// by name, with parents resolved the same way restoreJob does.
func (c *Controller) applyNodeUpsert(job core.JobID, ni nodeImage, now time.Time) error {
	sh := c.shardFor(job)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	h, ok := sh.jobs[job]
	if !ok {
		// The op raced ahead of the job's bootstrap image; materialize
		// the job so the upsert still lands.
		h = hierarchy.New(job, c.cfg.LeaseDuration, now)
		sh.jobs[job] = h
	}
	n, ok := h.Lookup(ni.Name)
	if !ok {
		if len(ni.Parents) == 0 {
			return fmt.Errorf("controller: replicated root %q does not match job %q", ni.Name, job)
		}
		first, ok := h.Lookup(ni.Parents[0])
		if !ok {
			return fmt.Errorf("controller: replicated parent %q missing: %w", ni.Parents[0], core.ErrNotFound)
		}
		var extra []core.Path
		for _, p := range ni.Parents[1:] {
			pn, ok := h.Lookup(p)
			if !ok {
				return fmt.Errorf("controller: replicated parent %q missing: %w", p, core.ErrNotFound)
			}
			extra = append(extra, pn.CanonicalPath())
		}
		created, err := h.Create(first.CanonicalPath().MustChild(ni.Name), extra,
			ni.Type, ni.LeaseDuration, now)
		if err != nil {
			return err
		}
		n = created
	}
	n.LeaseDuration = ni.LeaseDuration
	n.LastRenewed = ni.LastRenewed
	n.Type = ni.Type
	n.Map = ni.Map
	n.Flushed = ni.Flushed
	n.FlushKey = ni.FlushKey
	n.Quota = ni.Quota
	sh.reindexNodeLocked(job, n)
	if n == h.Root() {
		c.setTenantQuotaLocal(string(job), ni.Quota)
	}
	return nil
}

// setTenantQuotaLocal updates the tenant quota mirror without the
// server fan-out (standbys don't talk to the data plane).
func (c *Controller) setTenantQuotaLocal(tenant string, q core.Quota) {
	c.qMu.Lock()
	if q.IsZero() {
		delete(c.tenantQuotas, tenant)
	} else {
		c.tenantQuotas[tenant] = q
	}
	c.qMu.Unlock()
}

// --- Replication RPC handlers ------------------------------------------

// handleReplicate applies one streamed batch (or heartbeat) from the
// active controller.
func (c *Controller) handleReplicate(req proto.CtrlReplicateReq) (proto.CtrlReplicateResp, error) {
	if err := c.observeLeader(req.Gen, req.Leader); err != nil {
		return proto.CtrlReplicateResp{}, err
	}
	c.applyMu.Lock()
	defer c.applyMu.Unlock()
	c.group.mu.Lock()
	applied := c.group.appliedSeq
	c.group.mu.Unlock()
	if len(req.Ops) > 0 {
		if req.FirstSeq > applied+1 {
			return proto.CtrlReplicateResp{}, fmt.Errorf(
				"controller: replication gap: have %d, batch starts %d: %w",
				applied, req.FirstSeq, core.ErrStaleEpoch)
		}
		for i, raw := range req.Ops {
			seq := req.FirstSeq + uint64(i)
			if seq <= applied {
				continue
			}
			var op replOp
			if err := rpc.Unmarshal(raw, &op); err != nil {
				return proto.CtrlReplicateResp{}, err
			}
			c.applyOp(op)
			applied = seq
		}
		c.group.mu.Lock()
		if applied > c.group.appliedSeq {
			c.group.appliedSeq = applied
		}
		c.group.mu.Unlock()
	}
	return proto.CtrlReplicateResp{AckedSeq: applied}, nil
}

// handleBootstrap installs a full snapshot from the active controller.
func (c *Controller) handleBootstrap(req proto.CtrlBootstrapReq) (proto.CtrlBootstrapResp, error) {
	if err := c.observeLeader(req.Gen, req.Leader); err != nil {
		return proto.CtrlBootstrapResp{}, err
	}
	var img groupImage
	if err := rpc.Unmarshal(req.Image, &img); err != nil {
		return proto.CtrlBootstrapResp{}, err
	}
	if err := c.applyImage(img); err != nil {
		return proto.CtrlBootstrapResp{}, err
	}
	c.log.Info("controller: bootstrapped from leader",
		"leader", req.Leader, "gen", req.Gen, "seq", img.Seq)
	return proto.CtrlBootstrapResp{}, nil
}
