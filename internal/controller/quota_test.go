package controller_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/proto"
	"jiffy/internal/server"
)

func TestSetQuotaValidation(t *testing.T) {
	r := newRig(t, 1, 8, false)
	if err := r.ctrl.SetQuota("nosuchjob/t", core.Quota{OpsPerSec: 1}); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("quota on unknown job: err = %v, want ErrNotFound", err)
	}
	if err := r.ctrl.RegisterJob("j"); err != nil {
		t.Fatal(err)
	}
	for _, q := range []core.Quota{
		{OpsPerSec: -1},
		{BytesPerSec: -5},
		{MemoryBytes: -1},
	} {
		if err := r.ctrl.SetQuota("j", q); err == nil {
			t.Errorf("negative quota %+v accepted", q)
		}
	}
}

// TestMemoryQuotaBoundsAllocation: the MemoryBytes dimension caps the
// physical blocks a subtree may hold, refusing both initial
// provisioning and scale-up past the budget with ErrQuotaExceeded.
func TestMemoryQuotaBoundsAllocation(t *testing.T) {
	r := newRig(t, 1, 16, false)
	cfg := core.TestConfig()
	if err := r.ctrl.RegisterJob("j"); err != nil {
		t.Fatal(err)
	}
	// Budget: exactly two blocks for the whole job.
	if err := r.ctrl.SetQuota("j", core.Quota{MemoryBytes: int64(2 * cfg.BlockSize)}); err != nil {
		t.Fatal(err)
	}
	// Three initial blocks exceed the budget outright.
	_, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/big", Type: core.DSKV, InitialBlocks: 3})
	if !errors.Is(err, core.ErrQuotaExceeded) {
		t.Fatalf("3-block provision under 2-block quota: err = %v, want ErrQuotaExceeded", err)
	}
	// Two blocks fit.
	resp, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/t", Type: core.DSKV, InitialBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The budget is now exhausted: growing the KV must be refused.
	_, err = r.ctrl.ScaleUp(proto.ScaleUpReq{Path: "j/t", Block: resp.Map.Blocks[0].Info.ID})
	if !errors.Is(err, core.ErrQuotaExceeded) {
		t.Fatalf("scale-up past quota: err = %v, want ErrQuotaExceeded", err)
	}
	// And so must any sibling allocation under the same job root.
	_, err = r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/u", Type: core.DSKV, InitialBlocks: 1})
	if !errors.Is(err, core.ErrQuotaExceeded) {
		t.Fatalf("sibling provision past quota: err = %v, want ErrQuotaExceeded", err)
	}
	// Raising the budget unblocks the exact same request.
	if err := r.ctrl.SetQuota("j", core.Quota{MemoryBytes: int64(8 * cfg.BlockSize)}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/u", Type: core.DSKV, InitialBlocks: 1}); err != nil {
		t.Fatalf("provision after raising quota: %v", err)
	}
}

// TestMemoryQuotaScopedToSubtree: a quota on an interior node binds
// its own subtree only; siblings allocate freely.
func TestMemoryQuotaScopedToSubtree(t *testing.T) {
	r := newRig(t, 1, 16, false)
	cfg := core.TestConfig()
	if err := r.ctrl.RegisterJob("j"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/stage0", Type: core.DSNone}); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.SetQuota("j/stage0", core.Quota{MemoryBytes: int64(cfg.BlockSize)}); err != nil {
		t.Fatal(err)
	}
	_, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/stage0/shuffle", Type: core.DSKV, InitialBlocks: 2})
	if !errors.Is(err, core.ErrQuotaExceeded) {
		t.Fatalf("in-subtree provision past quota: err = %v, want ErrQuotaExceeded", err)
	}
	if _, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/stage1", Type: core.DSKV, InitialBlocks: 4}); err != nil {
		t.Fatalf("sibling outside the quota subtree refused: %v", err)
	}
}

// TestTenantQuotaBroadcast: rate dimensions registered on a job root
// reach every memory server's gate — including servers that join
// later — and clear on job deregistration.
func TestTenantQuotaBroadcast(t *testing.T) {
	r := newRig(t, 2, 8, false)
	if err := r.ctrl.RegisterJob("j"); err != nil {
		t.Fatal(err)
	}
	q := core.Quota{OpsPerSec: 100, BytesPerSec: 1 << 20, Weight: 2}
	if err := r.ctrl.SetQuota("j", q); err != nil {
		t.Fatal(err)
	}
	for i, srv := range r.servers {
		if got := srv.Gate().Quota("j"); got != q {
			t.Fatalf("server %d gate quota = %+v, want %+v", i, got, q)
		}
		if !srv.Gate().Active() {
			t.Fatalf("server %d gate inactive after quota broadcast", i)
		}
	}

	// A server that registers after the quota was set must receive the
	// replayed table.
	late, err := server.New(server.Options{
		Config:         core.TestConfig(),
		ControllerAddr: r.ctrlAddr,
		Persist:        r.store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if _, err := late.Listen(fmt.Sprintf("mem://srv-late-%d", rigSeq)); err != nil {
		t.Fatal(err)
	}
	if err := late.Register(8); err != nil {
		t.Fatal(err)
	}
	if got := late.Gate().Quota("j"); got != q {
		t.Fatalf("late server gate quota = %+v, want %+v", got, q)
	}

	// Deregistration withdraws the tenant everywhere.
	if err := r.ctrl.DeregisterJob("j"); err != nil {
		t.Fatal(err)
	}
	for i, srv := range append(r.servers, late) {
		if got := srv.Gate().Quota("j"); !got.IsZero() {
			t.Fatalf("server %d still holds quota %+v after deregister", i, got)
		}
	}
}

// TestLeaseExpiryReleasesQuota: when a prefix's lease lapses and the
// controller reclaims it, its quota registration is surrendered with
// the blocks — allocations that the quota refused before expiry
// succeed afterwards. Covers both data-bearing and bare interior
// nodes (which have no blocks to flush but still hold a quota).
func TestLeaseExpiryReleasesQuota(t *testing.T) {
	r := newRig(t, 1, 16, true)
	cfg := core.TestConfig()
	if err := r.ctrl.RegisterJob("j"); err != nil {
		t.Fatal(err)
	}
	// Data-bearing prefix: one block allocated, budget of two.
	if _, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/a", Type: core.DSKV, InitialBlocks: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.SetQuota("j/a", core.Quota{MemoryBytes: int64(2 * cfg.BlockSize)}); err != nil {
		t.Fatal(err)
	}
	// Bare interior node with a one-block budget.
	if _, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/c", Type: core.DSNone}); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.SetQuota("j/c", core.Quota{MemoryBytes: int64(cfg.BlockSize)}); err != nil {
		t.Fatal(err)
	}

	_, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/a/b", Type: core.DSKV, InitialBlocks: 2})
	if !errors.Is(err, core.ErrQuotaExceeded) {
		t.Fatalf("pre-expiry provision under j/a: err = %v, want ErrQuotaExceeded", err)
	}
	_, err = r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/c/d", Type: core.DSKV, InitialBlocks: 2})
	if !errors.Is(err, core.ErrQuotaExceeded) {
		t.Fatalf("pre-expiry provision under j/c: err = %v, want ErrQuotaExceeded", err)
	}

	// Let every lease in the job lapse and reclaim.
	r.vclock.Advance(2 * time.Minute)
	if n := r.ctrl.ExpireNow(); n == 0 {
		t.Fatal("nothing reclaimed after leases lapsed")
	}

	// The reclaimed prefixes' quotas are gone: the same allocations now
	// pass (the new children get fresh leases).
	if _, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/a/b", Type: core.DSKV, InitialBlocks: 2}); err != nil {
		t.Fatalf("post-expiry provision under j/a: %v", err)
	}
	if _, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/c/d", Type: core.DSKV, InitialBlocks: 2}); err != nil {
		t.Fatalf("post-expiry provision under j/c: %v", err)
	}
}
