package controller

import (
	"jiffy/internal/hierarchy"
)

// expiryWorker is the lease manager's scan loop (§4.2.1): periodically
// traverse every address hierarchy, and for each expired prefix flush
// its data to the persistent tier and reclaim its memory blocks
// (§3.2). Flushing before reclaiming guarantees that a lease lost to
// network delays never loses data — the prefix can be loaded back.
func (c *Controller) expiryWorker() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-c.clk.After(c.cfg.LeaseScanPeriod):
			c.ExpireNow()
		}
	}
}

// ExpireNow runs one expiry scan synchronously. The trace-replay
// simulator calls this directly under virtual time.
func (c *Controller) ExpireNow() int {
	if !c.leading.Load() {
		// Standbys learn expiries from the leader's op-log; scanning
		// locally would release blocks the leader still tracks.
		return 0
	}
	now := c.clk.Now()
	reclaimed := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for _, h := range s.jobs {
			for _, n := range h.Expired(now) {
				if c.reclaimLocked(h, n) {
					reclaimed++
				}
			}
		}
		s.mu.Unlock()
	}
	if reclaimed > 0 {
		_ = c.repl.flush()
	}
	return reclaimed
}

// reclaimLocked flushes and frees one expired node's blocks. The node
// itself stays in the hierarchy (marked Flushed) so a late consumer
// can still open the prefix and trigger a reload; it is removed
// entirely only when the job deregisters or RemovePrefix is called.
// Caller holds the shard lock. Returns true if blocks were reclaimed.
func (c *Controller) reclaimLocked(h *hierarchy.Hierarchy, n *hierarchy.Node) bool {
	if len(n.Map.Blocks) == 0 {
		// No data to flush, but an expired prefix still surrenders its
		// quota registration.
		if !n.Quota.IsZero() {
			c.releaseQuotaLocked(h, n)
			c.commitNodeLocked(n.Job, n)
		}
		return false
	}
	if _, err := c.flushLocked(n, ""); err != nil {
		// Leave the data in memory rather than lose it; the next scan
		// retries.
		c.log.Warn("controller: expiry flush failed; keeping blocks",
			"prefix", n.CanonicalPath(), "err", err)
		return false
	}
	c.releaseBlocksLocked(n)
	c.releaseQuotaLocked(h, n)
	n.Flushed = true
	c.commitNodeLocked(n.Job, n)
	c.expiries.Add(1)
	return true
}

// ExpiryCount reports how many prefixes have been reclaimed by the
// expiry worker (test/bench instrumentation).
func (c *Controller) ExpiryCount() int64 { return c.expiries.Load() }
