package controller

import (
	"fmt"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/hierarchy"
	"jiffy/internal/rpc"
)

// Chain repair (§4.2.2 fault tolerance). When a memory server dies (or
// is drained), every chain with a member on it is spliced: the lost
// member is removed, a replacement is allocated on a healthy server and
// resynced from a surviving replica's snapshot, and every member —
// survivors and replacements alike — is switched to the new chain
// layout under a fresh replication generation (the membership epoch).
// The generation switch is what makes the splice safe against writes
// still in flight on the old layout: replicas reject mismatched
// generations with ErrStaleEpoch instead of applying them out of order.
//
// Blocks with no surviving replica are rebuilt from the persistent
// tier when the prefix has a flushed copy; otherwise they are marked
// Lost in the partition map so clients fail fast with ErrBlockLost.

// repairAfterDeath walks every job and repairs every partition entry
// that had a replica on the dead server. Callers must not hold a shard
// lock.
func (c *Controller) repairAfterDeath(addr string) {
	c.repairServer(addr, c.memberEpoch.Load(), false)
}

// DrainServer migrates every block off a still-healthy server using
// the same splice machinery as death repair, then leaves the server
// out of the membership (it is marked dead and evicted from the
// allocator first, so concurrent scale-ups cannot re-place blocks on
// it mid-drain). Returns the number of migrated partition entries.
func (c *Controller) DrainServer(addr string) (int, error) {
	known := false
	for _, s := range c.alloc.Servers() {
		if s == addr {
			known = true
			break
		}
	}
	if !c.markServerDead(addr) {
		return 0, fmt.Errorf("controller: drain %s: server already dead: %w", addr, core.ErrNotFound)
	}
	if !known {
		// Nothing was ever placed there; the eviction above is enough.
		return 0, nil
	}
	c.log.Info("controller: draining server", "addr", addr)
	return c.repairServer(addr, c.memberEpoch.Load(), true), nil
}

// repairServer splices addr out of every chain that references it.
// alive distinguishes a drain (the server still answers, so snapshots
// may come from it and its blocks are deleted after migration) from a
// death (never talk to it again). Returns the number of repaired
// entries.
func (c *Controller) repairServer(addr string, gen uint64, alive bool) int {
	repaired := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for _, h := range s.jobs {
			h.Walk(func(n *hierarchy.Node) bool {
				repaired += c.repairNodeLocked(n, addr, gen, alive)
				return true
			})
		}
		s.mu.Unlock()
	}
	if repaired > 0 || !alive {
		c.log.Info("controller: repair complete", "addr", addr,
			"entries", repaired, "epoch", gen)
	}
	return repaired
}

// repairNodeLocked repairs every entry of one prefix that references
// addr, bumping the map epoch once if anything changed. Caller holds
// the shard lock.
func (c *Controller) repairNodeLocked(n *hierarchy.Node, addr string, gen uint64, alive bool) int {
	changed := 0
	for i := range n.Map.Blocks {
		e := &n.Map.Blocks[i]
		if e.Lost || !entryReferences(*e, addr) {
			continue
		}
		if c.repairEntryLocked(n, e, addr, gen, alive) {
			changed++
			c.chainRepairs.Add(1)
		}
	}
	if changed > 0 {
		n.Map.Epoch++
	}
	return changed
}

// entryReferences reports whether any replica of e lives on addr.
func entryReferences(e ds.PartitionEntry, addr string) bool {
	for _, info := range e.Replicas() {
		if info.Server == addr {
			return true
		}
	}
	return false
}

// repairEntryLocked splices addr out of one entry's chain. Returns
// true when the entry changed (including being marked Lost).
func (c *Controller) repairEntryLocked(n *hierarchy.Node, e *ds.PartitionEntry,
	addr string, gen uint64, alive bool) bool {
	replicas := e.Replicas()
	var survivors, doomed core.ReplicaChain
	for _, info := range replicas {
		if info.Server == addr {
			doomed = append(doomed, info)
		} else {
			survivors = append(survivors, info)
		}
	}
	if len(survivors) == 0 {
		return c.recoverSoleReplicaLocked(n, e, doomed, gen, alive)
	}

	// Splice: replacements go at the tail of the surviving order; the
	// tail-most survivor (or, on a drain, the old tail itself) holds
	// exactly the acknowledged writes and is the resync source.
	src := survivors[len(survivors)-1]
	if alive {
		src = replicas[len(replicas)-1]
	}
	newChain := append(core.ReplicaChain(nil), survivors...)
	replacements, err := c.alloc.Allocate(len(doomed))
	if err != nil {
		c.log.Warn("controller: no capacity for chain replacement; degrading chain width",
			"block", e.Info.ID, "want", len(replicas), "have", len(survivors), "err", err)
		replacements = nil
	}
	newChain = append(newChain, replacements...)

	path := n.CanonicalPath()
	for i, info := range replacements {
		if err := c.createBlockOnServer(info, path, n.Map.Type, e.Chunk, e.Slots, chainField(newChain)); err != nil {
			c.log.Warn("controller: chain replacement create failed; degrading chain width",
				"block", e.Info.ID, "on", info.Server, "err", err)
			for _, done := range replacements[:i] {
				c.deleteBlockOnServer(done)
			}
			c.alloc.Free(replacements)
			replacements = nil
			newChain = append(core.ReplicaChain(nil), survivors...)
			break
		}
	}
	if len(replacements) > 0 {
		if err := c.resyncMembers(src, replacements); err != nil {
			c.log.Warn("controller: chain replacement resync failed; degrading chain width",
				"block", e.Info.ID, "err", err)
			for _, info := range replacements {
				c.deleteBlockOnServer(info)
			}
			c.alloc.Free(replacements)
			newChain = append(core.ReplicaChain(nil), survivors...)
		}
	}

	// Switch every member to the new layout, tail first and head last,
	// so the head only starts propagating under the new generation once
	// every downstream member accepts it.
	for i := len(newChain) - 1; i >= 0; i-- {
		if err := c.updateChainOnServer(newChain[i], chainField(newChain), gen); err != nil {
			c.log.Warn("controller: chain switch failed on member",
				"block", newChain[i].ID, "on", newChain[i].Server, "err", err)
		}
	}

	headChanged := newChain.Head() != e.Info
	e.Info = newChain.Head()
	e.Chain = chainField(newChain)
	if alive {
		for _, info := range doomed {
			c.deleteBlockOnServer(info)
		}
	}
	if headChanged {
		c.relinkQueuePredecessorLocked(n, *e)
	}
	return true
}

// resyncMembers pushes src's snapshot to each target block. Survivors
// are never restored — only replacements — so writes racing the splice
// cannot be clobbered by an older snapshot.
func (c *Controller) resyncMembers(src core.BlockInfo, targets core.ReplicaChain) error {
	snap, err := c.snapshotBlockOnServer(src)
	if err != nil {
		return err
	}
	for _, info := range targets {
		if err := c.restoreBlockOnServer(info, snap); err != nil {
			return err
		}
	}
	return nil
}

// recoverSoleReplicaLocked handles an entry whose every replica lived
// on addr. On a drain the data is still reachable and is migrated by
// snapshot; after a death it is rebuilt from the persistent tier when
// the prefix has a flushed copy, and otherwise marked Lost.
func (c *Controller) recoverSoleReplicaLocked(n *hierarchy.Node, e *ds.PartitionEntry,
	doomed core.ReplicaChain, gen uint64, alive bool) bool {
	path := n.CanonicalPath()
	chains, err := c.allocateChains(1)
	if err != nil {
		if alive {
			c.log.Warn("controller: drain has no capacity for block", "block", e.Info.ID, "err", err)
			return false
		}
		c.markLostLocked(e, "no capacity for recovery")
		return true
	}
	chain := chains[0]
	if err := c.createChainOnServers(chain, path, n.Map.Type, e.Chunk, e.Slots); err != nil {
		c.alloc.Free(chain)
		if alive {
			c.log.Warn("controller: drain cannot re-create block", "block", e.Info.ID, "err", err)
			return false
		}
		c.markLostLocked(e, "recovery create failed")
		return true
	}

	if alive {
		// Migrate live data by snapshot.
		if err := c.resyncMembers(e.ReadTarget(), chain); err != nil {
			c.log.Warn("controller: drain migration failed", "block", e.Info.ID, "err", err)
			c.deleteChainOnServers(ds.PartitionEntry{Info: chain.Head(), Chain: chainField(chain)})
			c.alloc.Free(chain)
			return false
		}
	} else {
		// Rebuild from the persistent tier.
		key, ok := c.flushedKeyLocked(n, *e)
		if !ok {
			c.deleteChainOnServers(ds.PartitionEntry{Info: chain.Head(), Chain: chainField(chain)})
			c.alloc.Free(chain)
			c.markLostLocked(e, "no flushed copy")
			return true
		}
		for _, member := range chain {
			if err := c.loadBlockOnServer(member, key); err != nil {
				c.log.Warn("controller: recovery load failed", "block", e.Info.ID, "key", key, "err", err)
				c.deleteChainOnServers(ds.PartitionEntry{Info: chain.Head(), Chain: chainField(chain)})
				c.alloc.Free(chain)
				c.markLostLocked(e, "recovery load failed")
				return true
			}
		}
		c.log.Info("controller: block recovered from persistent tier",
			"block", e.Info.ID, "key", key, "new", chain.Head().ID)
	}

	for i := len(chain) - 1; i >= 0; i-- {
		if err := c.updateChainOnServer(chain[i], chainField(chain), gen); err != nil {
			c.log.Warn("controller: chain switch failed on member",
				"block", chain[i].ID, "on", chain[i].Server, "err", err)
		}
	}
	e.Info = chain.Head()
	e.Chain = chainField(chain)
	e.Lost = false
	if alive {
		for _, info := range doomed {
			c.deleteBlockOnServer(info)
		}
	}
	c.relinkQueuePredecessorLocked(n, *e)
	c.relinkQueueSuccessorLocked(n, *e)
	return true
}

// markLostLocked flags an entry as unrecoverable so clients fail fast
// with ErrBlockLost instead of retrying against a dead server.
func (c *Controller) markLostLocked(e *ds.PartitionEntry, reason string) {
	e.Lost = true
	e.Chain = nil
	c.blocksLost.Add(1)
	c.log.Error("controller: block lost", "block", e.Info.ID, "reason", reason)
}

// flushedKeyLocked looks up the persistent-tier snapshot key for one
// entry of a flushed prefix: it reads the flush manifest and matches
// the entry by its partition role (chunk index, and slot ranges for KV
// stores). Caller holds the shard lock.
func (c *Controller) flushedKeyLocked(n *hierarchy.Node, e ds.PartitionEntry) (string, bool) {
	if n.FlushKey == "" {
		return "", false
	}
	data, err := c.persist.Get(n.FlushKey + "/manifest")
	if err != nil {
		return "", false
	}
	var m manifest
	if err := rpc.Unmarshal(data, &m); err != nil {
		return "", false
	}
	for _, me := range m.Entries {
		if me.Chunk != e.Chunk {
			continue
		}
		if n.Map.Type == core.DSKV && !slotsEqual(me.Slots, e.Slots) {
			continue
		}
		return me.Key, true
	}
	return "", false
}

// slotsEqual reports whether two slot-range lists are identical.
func slotsEqual(a, b []ds.SlotRange) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// relinkQueuePredecessorLocked re-seals the predecessor of a repaired
// queue segment so its redirect names the new head. Sealing is a
// sequenced mutation, so the new pointer propagates down the
// predecessor's own chain like any enqueue.
func (c *Controller) relinkQueuePredecessorLocked(n *hierarchy.Node, e ds.PartitionEntry) {
	if n.Map.Type != core.DSQueue || e.Chunk == 0 {
		return
	}
	for _, p := range n.Map.Blocks {
		if p.Chunk != e.Chunk-1 {
			continue
		}
		if p.Lost {
			return
		}
		if err := c.setNextOnChain(p, e.Info); err != nil {
			c.log.Warn("controller: queue relink after repair failed",
				"from", p.Info.ID, "to", e.Info.ID, "err", err)
		}
		return
	}
}

// relinkQueueSuccessorLocked re-seals a recovered queue segment toward
// its successor: a snapshot restored from the persistent tier may
// predate the seal, which would otherwise strand consumers at the
// recovered segment's end.
func (c *Controller) relinkQueueSuccessorLocked(n *hierarchy.Node, e ds.PartitionEntry) {
	if n.Map.Type != core.DSQueue {
		return
	}
	for _, s := range n.Map.Blocks {
		if s.Chunk != e.Chunk+1 || s.Lost {
			continue
		}
		if err := c.setNextOnChain(e, s.Info); err != nil {
			c.log.Warn("controller: queue successor relink after recovery failed",
				"from", e.Info.ID, "to", s.Info.ID, "err", err)
		}
		return
	}
}
