package controller

import (
	"errors"
	"fmt"
	"sort"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/hierarchy"
	"jiffy/internal/rpc"
)

// Chain repair (§4.2.2 fault tolerance). When a memory server dies (or
// is drained), every chain with a member on it is spliced: the lost
// member is removed, a replacement is allocated on a healthy server and
// resynced from a surviving replica's snapshot, and every member —
// survivors and replacements alike — is switched to the new chain
// layout under a fresh replication generation (the membership epoch).
//
// Two orderings make the splice safe against writes still in flight on
// the old layout:
//
//   - Fence before snapshot. An acknowledgement requires every member
//     of the OLD chain to apply the write, so before the resync
//     snapshot is taken every old-chain member except its head is made
//     to reject further traffic — survivors by switching to the new
//     generation (ErrStaleEpoch for old-generation propagation), still
//     answering drained members by sealing, dead members by being
//     dead. From that point no write can be acknowledged that the
//     snapshot might miss; fenced writes fail fast and the client
//     retries against the repaired chain.
//
//   - Head last. The head is the only member that starts a new
//     generation's sequence stream, so it switches only after every
//     downstream member (survivors and resynced replacements) is
//     installed at sequence zero — a head switched early would consume
//     sequence numbers a not-yet-ready replacement can never fill.
//
// Lock discipline: the shard mutex is held only to collect the
// affected entries and to commit the result. The RPC-heavy splice
// (snapshot/restore/create, carrying full block payloads) runs with no
// locks held, and the commit re-validates that the entry is unchanged —
// a lost race rolls the splice back and replans from the current map,
// so concurrent metadata operations never stall behind a repair.
//
// Blocks with no surviving replica are rebuilt from the persistent
// tier when the prefix has a flushed copy; otherwise they are marked
// Lost in the partition map so clients fail fast with ErrBlockLost.

// repairAttempts bounds the collect → splice → commit retries for one
// entry. A retry follows either a lost commit race or the eviction of
// a further dead server discovered mid-splice, so the loop converges
// in practice within a round or two.
const repairAttempts = 4

// repairAfterDeath walks every job and repairs every partition entry
// that had a replica on the dead server. Callers must not hold a shard
// lock.
func (c *Controller) repairAfterDeath(addr string) {
	c.repairServer(addr, false)
}

// DrainServer migrates every block off a still-healthy server using
// the same splice machinery as death repair, then leaves the server
// out of the membership (it is marked dead and evicted from the
// allocator first, so concurrent scale-ups cannot re-place blocks on
// it mid-drain). Returns the number of migrated partition entries.
func (c *Controller) DrainServer(addr string) (int, error) {
	known := false
	for _, s := range c.alloc.Servers() {
		if s == addr {
			known = true
			break
		}
	}
	if !c.markServerDead(addr) {
		return 0, fmt.Errorf("controller: drain %s: server already dead: %w", addr, core.ErrNotFound)
	}
	if !known {
		// Nothing was ever placed there; the eviction above is enough.
		return 0, nil
	}
	c.log.Info("controller: draining server", "addr", addr)
	return c.repairServer(addr, true), nil
}

// repairTarget captures, under the shard lock, everything the unlocked
// splice needs to know about one affected partition entry.
type repairTarget struct {
	node     *hierarchy.Node
	path     core.Path
	dsType   core.DSType
	flushKey string
	entry    ds.PartitionEntry
}

// spliceResult is the outcome of one unlocked splice attempt.
type spliceResult struct {
	newChain        core.ReplicaChain // layout to commit (nil when lost or aborted)
	replacements    core.ReplicaChain // created this attempt; rolled back on a lost commit
	deleteAfter     core.ReplicaChain // drained members, deleted once the commit lands
	relinkSuccessor bool              // recovered queue segment: re-seal toward its successor
	lost            bool              // no copy anywhere: mark the entry Lost
	lostReason      string
	abort           bool // leave the entry untouched (e.g. no capacity on a drain)
	demote          bool // the drained server died mid-splice: retry as a death
	tierRecovered   bool // rebuilt from a member's tier object (counts a tier recovery)
}

// relinkOp is a queue re-seal to run after the commit unlocks.
type relinkOp struct {
	tail ds.PartitionEntry
	next core.BlockInfo
}

// repairServer splices addr out of every chain that references it.
// alive distinguishes a drain (the server still answers, so its data
// is migrated and its blocks deleted afterwards) from a death (never
// talk to it again). Returns the number of repaired entries.
func (c *Controller) repairServer(addr string, alive bool) int {
	repaired := 0
	for _, sh := range c.shards {
		for _, t := range c.collectTargets(sh, addr) {
			if c.repairEntry(sh, t, addr, alive) {
				repaired++
				c.chainRepairs.Add(1)
			}
		}
	}
	if repaired > 0 || !alive {
		c.log.Info("controller: repair complete", "addr", addr,
			"entries", repaired, "epoch", c.memberEpoch.Load())
	}
	if repaired > 0 {
		// Repairs can run off the RPC path (detector worker, evictServer
		// goroutine), so push their commits to the standbys here.
		_ = c.repl.flush()
	}
	return repaired
}

// collectTargets gathers the partition entries referencing addr from
// the shard's server index — O(affected entries), not a walk of every
// job. The shard lock is held only for the collection — no RPCs.
func (c *Controller) collectTargets(sh *shard, addr string) []repairTarget {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var targets []repairTarget
	for _, n := range sh.indexedNodesLocked(addr) {
		for _, e := range n.Map.Blocks {
			if e.Lost || !entryReferences(e, addr) {
				continue
			}
			targets = append(targets, repairTarget{
				node:     n,
				path:     n.CanonicalPath(),
				dsType:   n.Map.Type,
				flushKey: n.FlushKey,
				entry:    copyEntry(e),
			})
		}
	}
	// The index is a map; order the work deterministically.
	sort.Slice(targets, func(i, j int) bool {
		return targets[i].entry.Info.ID < targets[j].entry.Info.ID
	})
	return targets
}

// copyEntry clones the slices a splice plans from, so the unlocked
// phase never aliases map-owned memory.
func copyEntry(e ds.PartitionEntry) ds.PartitionEntry {
	e.Chain = append(core.ReplicaChain(nil), e.Chain...)
	e.Slots = append([]ds.SlotRange(nil), e.Slots...)
	return e
}

// entryReferences reports whether any replica of e lives on addr.
func entryReferences(e ds.PartitionEntry, addr string) bool {
	for _, info := range e.Replicas() {
		if info.Server == addr {
			return true
		}
	}
	return false
}

// repairEntry runs the collect → splice → commit loop for one entry.
func (c *Controller) repairEntry(sh *shard, t repairTarget, addr string, alive bool) bool {
	for attempt := 0; attempt < repairAttempts; attempt++ {
		if attempt > 0 {
			var ok bool
			if t, ok = c.refreshTarget(sh, t, addr); !ok {
				// The entry is gone, lost, or was already repaired by a
				// concurrent splice.
				return false
			}
		}
		res, retry := c.spliceEntry(t, addr, c.memberEpoch.Load(), alive)
		if res.demote {
			alive = false
		}
		if retry {
			continue
		}
		if res.abort {
			return false
		}
		relinks, ok := c.commitRepair(sh, t, res)
		if !ok {
			// Lost the commit race: the entry changed while the splice
			// ran unlocked. Undo the side effects and replan.
			c.releaseReplacements(res.replacements)
			continue
		}
		if res.tierRecovered {
			c.tiers.recoveries.Add(1)
		}
		// Members spliced out of the chain take their tier records with
		// them: a recovery has consumed the object it needed, and any
		// other spliced-out member's object is stale the moment the new
		// chain (resynced or rebuilt) starts acknowledging writes.
		for _, old := range t.entry.Replicas() {
			kept := false
			for _, cur := range res.newChain {
				if cur == old {
					kept = true
					break
				}
			}
			if !kept {
				c.dropTierRecord(old)
			}
		}
		for _, info := range res.deleteAfter {
			c.deleteBlockOnServer(info)
		}
		for _, r := range relinks {
			if err := c.setNextOnChain(r.tail, r.next); err != nil {
				c.log.Warn("controller: queue relink after repair failed",
					"from", r.tail.Info.ID, "to", r.next.ID, "err", err)
			}
		}
		return true
	}
	c.log.Error("controller: entry repair did not converge; chain may be degraded",
		"block", t.entry.Info.ID, "addr", addr)
	return false
}

// refreshTarget re-reads the current state of t's entry for a retry.
// false when the entry no longer needs repair.
func (c *Controller) refreshTarget(sh *shard, t repairTarget, addr string) (repairTarget, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range t.node.Map.Blocks {
		if e.Lost || e.Chunk != t.entry.Chunk || !entryReferences(e, addr) {
			continue
		}
		if t.dsType == core.DSKV && !slotsEqual(e.Slots, t.entry.Slots) {
			continue
		}
		t.entry = copyEntry(e)
		t.flushKey = t.node.FlushKey
		return t, true
	}
	return t, false
}

// spliceEntry performs the RPC-heavy part of one entry's repair with no
// locks held, returning the layout to commit. retry=true means the
// attempt must be restarted from a fresh view of the entry (a member
// died mid-splice, or the fence could not be established).
func (c *Controller) spliceEntry(t repairTarget, addr string, gen uint64, alive bool) (spliceResult, bool) {
	replicas := t.entry.Replicas()
	var survivors, doomedAlive, doomedDead core.ReplicaChain
	for _, info := range replicas {
		switch {
		case info.Server == addr && alive:
			doomedAlive = append(doomedAlive, info)
		case info.Server == addr || c.ServerDead(info.Server):
			// Members on other servers declared dead mid-repair are
			// spliced out in the same pass.
			doomedDead = append(doomedDead, info)
		default:
			survivors = append(survivors, info)
		}
	}
	if len(survivors) == 0 {
		return c.recoverSoleReplica(t, doomedAlive, gen)
	}

	oldHead := replicas[0]
	replacements := c.allocReplacements(t, survivors, len(doomedAlive)+len(doomedDead))
	newChain := append(append(core.ReplicaChain(nil), survivors...), replacements...)

	// Fence the old chain (see the package comment): every survivor
	// except the old head switches to the new generation now, tail
	// first, so old-generation propagation rejects and no write can be
	// acknowledged after the snapshot below. A survivor that cannot be
	// switched would stay wedged on the old generation and reject every
	// new-generation mutation forever — so the splice restarts instead,
	// with the member evicted when the failure was connectivity-class.
	for i := len(survivors) - 1; i >= 0; i-- {
		m := survivors[i]
		if m == oldHead {
			continue // switched last, once the replacements are ready
		}
		if err := c.switchMember(m, chainField(newChain), gen); err != nil {
			c.log.Warn("controller: chain fence failed on survivor; restarting splice",
				"block", m.ID, "on", m.Server, "err", err)
			c.releaseReplacements(replacements)
			return spliceResult{}, true
		}
	}
	// Still-answering drained members are sealed: required when one of
	// them is the old tail (the last unfenced ack point), and it makes
	// writes racing the drain fail fast everywhere else too. A failed
	// seal is fence-preserving — it means the member is unreachable or
	// its block is already gone, and either way it can no longer apply
	// (and so never acknowledge) a write.
	for _, m := range doomedAlive {
		if err := c.sealBlockOnServer(m); err != nil {
			c.log.Debug("controller: seal of drained member failed; treating as dead",
				"block", m.ID, "on", m.Server, "err", err)
		}
	}

	if len(replacements) > 0 {
		// Every old-chain member holds every acknowledged write, and
		// the fence froze the survivors' old-generation stream, so the
		// tail-most survivor's snapshot is a superset of all
		// acknowledged writes.
		src := survivors[len(survivors)-1]
		if err := c.resyncMembers(src, replacements); err != nil {
			c.log.Warn("controller: chain replacement resync failed; degrading chain width",
				"block", t.entry.Info.ID, "err", err)
			c.releaseReplacements(replacements)
			replacements = nil
			newChain = append(core.ReplicaChain(nil), survivors...)
		}
	}
	for i := len(replacements) - 1; i >= 0; i-- {
		if err := c.switchMember(replacements[i], chainField(newChain), gen); err != nil {
			c.log.Warn("controller: chain switch failed on replacement; degrading chain width",
				"block", replacements[i].ID, "on", replacements[i].Server, "err", err)
			c.releaseReplacements(replacements)
			replacements = nil
			newChain = append(core.ReplicaChain(nil), survivors...)
			break
		}
	}
	// The head switches last (see the package comment). When the old
	// head is doomed the new head was already switched in the fence
	// pass — safe, because no client routes writes to it until the
	// commit publishes it as the head.
	if survivors[0] == oldHead {
		if err := c.switchMember(oldHead, chainField(newChain), gen); err != nil {
			c.log.Warn("controller: chain switch failed on head; restarting splice",
				"block", oldHead.ID, "on", oldHead.Server, "err", err)
			c.releaseReplacements(replacements)
			return spliceResult{}, true
		}
	}
	return spliceResult{
		newChain:     newChain,
		replacements: replacements,
		deleteAfter:  doomedAlive,
	}, false
}

// switchMember switches one member to the new layout with one retry;
// a persistent connectivity-class failure evicts the member's server
// so the caller's restarted splice (and the server's own death repair)
// observe it dead instead of leaving it wedged on the old generation.
func (c *Controller) switchMember(m core.BlockInfo, chain core.ReplicaChain, gen uint64) error {
	err := c.updateChainOnServer(m, chain, gen)
	if err != nil {
		err = c.updateChainOnServer(m, chain, gen)
	}
	if err != nil {
		var ue *serverUnreachableError
		if errors.As(err, &ue) {
			c.evictServer(ue.addr)
		}
	}
	return err
}

// allocReplacements allocates and creates n replacement blocks for a
// splice, evicting unreachable placements and retrying so the new
// members land on healthy servers. Returns nil (degraded width) when
// capacity runs out or a server rejects the create outright.
func (c *Controller) allocReplacements(t repairTarget, survivors core.ReplicaChain, n int) core.ReplicaChain {
	for {
		repl, err := c.alloc.Allocate(n)
		if err != nil {
			c.log.Warn("controller: no capacity for chain replacement; degrading chain width",
				"block", t.entry.Info.ID, "want", len(survivors)+n, "have", len(survivors), "err", err)
			return nil
		}
		chain := chainField(append(append(core.ReplicaChain(nil), survivors...), repl...))
		retry := false
		for i, info := range repl {
			cerr := c.createBlockOnServer(info, t.path, t.dsType, t.entry.Chunk, t.entry.Slots, chain)
			if cerr == nil {
				continue
			}
			for _, done := range repl[:i] {
				c.deleteBlockOnServer(done)
			}
			c.alloc.Free(repl)
			var ue *serverUnreachableError
			if errors.As(cerr, &ue) {
				c.evictServer(ue.addr)
				retry = true
				break
			}
			c.log.Warn("controller: chain replacement create failed; degrading chain width",
				"block", t.entry.Info.ID, "on", info.Server, "err", cerr)
			return nil
		}
		if !retry {
			return repl
		}
	}
}

// releaseReplacements deletes and frees blocks created by an attempt
// whose result was not committed.
func (c *Controller) releaseReplacements(repl core.ReplicaChain) {
	if len(repl) == 0 {
		return
	}
	for _, info := range repl {
		c.deleteBlockOnServer(info)
	}
	c.alloc.Free(repl)
}

// resyncMembers pushes src's snapshot to each target block. Survivors
// are never restored — only replacements — so writes racing the splice
// cannot be clobbered by an older snapshot.
func (c *Controller) resyncMembers(src core.BlockInfo, targets core.ReplicaChain) error {
	snap, err := c.snapshotBlockOnServer(src)
	if err != nil {
		return err
	}
	for _, info := range targets {
		if err := c.restoreBlockOnServer(info, snap); err != nil {
			return err
		}
	}
	return nil
}

// recoverSoleReplica rebuilds an entry with no surviving replica.
// While draining (the old members still answer) the data is migrated
// by snapshot behind a seal fence; after a death it is rebuilt from
// the persistent tier when the prefix has a flushed copy, and
// otherwise marked Lost.
func (c *Controller) recoverSoleReplica(t repairTarget, doomedAlive core.ReplicaChain, gen uint64) (spliceResult, bool) {
	if len(doomedAlive) > 0 {
		return c.migrateSoleReplica(t, doomedAlive, gen)
	}

	// Death: rebuild from the persistent tier. A tier object (the block
	// was demoted under memory pressure before its chain died) is
	// preferred over a lease-flush manifest copy: its existence proves
	// no write was acknowledged after the demotion, so it is always
	// current; a flushed copy may predate later acknowledged writes.
	if obj, member, ok := c.recoverFromTier(t); ok {
		chain, err := c.provisionChain(t.path, t.dsType, t.entry.Chunk, t.entry.Slots)
		if err != nil {
			c.log.Warn("controller: no capacity to recover tiered block", "block", t.entry.Info.ID, "err", err)
			return spliceResult{lost: true, lostReason: "no capacity for recovery"}, false
		}
		for _, m := range chain {
			if err := c.restoreBlockOnServer(m, obj.Snapshot); err != nil {
				c.log.Warn("controller: tier recovery restore failed",
					"block", t.entry.Info.ID, "from", member, "err", err)
				c.releaseReplacements(chain)
				return spliceResult{lost: true, lostReason: "tier recovery restore failed"}, false
			}
		}
		for i := len(chain) - 1; i >= 0; i-- {
			if err := c.switchMember(chain[i], chainField(chain), gen); err != nil {
				c.releaseReplacements(chain)
				return spliceResult{}, true
			}
		}
		c.log.Info("controller: block recovered from tier object",
			"block", t.entry.Info.ID, "from", member, "new", chain.Head().ID)
		return spliceResult{
			newChain:        chain,
			replacements:    chain,
			relinkSuccessor: true,
			tierRecovered:   true,
		}, false
	}

	key, ok := c.flushedKey(t)
	if !ok {
		return spliceResult{lost: true, lostReason: "no flushed copy"}, false
	}
	chain, err := c.provisionChain(t.path, t.dsType, t.entry.Chunk, t.entry.Slots)
	if err != nil {
		c.log.Warn("controller: no capacity to recover block", "block", t.entry.Info.ID, "err", err)
		return spliceResult{lost: true, lostReason: "no capacity for recovery"}, false
	}
	for _, member := range chain {
		if err := c.loadBlockOnServer(member, key); err != nil {
			c.log.Warn("controller: recovery load failed", "block", t.entry.Info.ID, "key", key, "err", err)
			c.releaseReplacements(chain)
			return spliceResult{lost: true, lostReason: "recovery load failed"}, false
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		if err := c.switchMember(chain[i], chainField(chain), gen); err != nil {
			c.releaseReplacements(chain)
			return spliceResult{}, true
		}
	}
	c.log.Info("controller: block recovered from persistent tier",
		"block", t.entry.Info.ID, "key", key, "new", chain.Head().ID)
	return spliceResult{
		newChain:        chain,
		replacements:    chain,
		relinkSuccessor: true,
	}, false
}

// migrateSoleReplica moves a drained entry whose every replica lives
// on the drained (still answering) server: provision a fresh chain,
// seal the old members so no write can be acknowledged after the
// migration snapshot, then snapshot, restore, and switch.
func (c *Controller) migrateSoleReplica(t repairTarget, doomed core.ReplicaChain, gen uint64) (spliceResult, bool) {
	chain, err := c.provisionChain(t.path, t.dsType, t.entry.Chunk, t.entry.Slots)
	if err != nil {
		// Nothing sealed yet: the drain skips this entry and the data
		// stays readable and writable in place.
		c.log.Warn("controller: drain has no capacity for block", "block", t.entry.Info.ID, "err", err)
		return spliceResult{abort: true}, false
	}
	// Fence: seal every old member before the snapshot. A member that
	// cannot be sealed may still be acknowledging writes the snapshot
	// would miss, so the attempt restarts — as a death when the server
	// stopped answering (its data then comes from the persist tier, if
	// flushed).
	for _, m := range doomed {
		if err := c.sealBlockOnServer(m); err != nil {
			c.log.Warn("controller: drain seal failed; restarting entry",
				"block", m.ID, "on", m.Server, "err", err)
			c.releaseReplacements(chain)
			var ue *serverUnreachableError
			return spliceResult{demote: errors.As(err, &ue)}, true
		}
	}
	// The sealed old tail holds exactly the acknowledged writes.
	if err := c.resyncMembers(t.entry.ReadTarget(), chain); err != nil {
		c.log.Warn("controller: drain migration failed", "block", t.entry.Info.ID, "err", err)
		c.releaseReplacements(chain)
		var ue *serverUnreachableError
		return spliceResult{demote: errors.As(err, &ue)}, true
	}
	for i := len(chain) - 1; i >= 0; i-- {
		if err := c.switchMember(chain[i], chainField(chain), gen); err != nil {
			c.releaseReplacements(chain)
			return spliceResult{}, true
		}
	}
	return spliceResult{
		newChain:        chain,
		replacements:    chain,
		deleteAfter:     doomed,
		relinkSuccessor: true,
	}, false
}

// commitRepair publishes a spliced layout into the partition map. It
// re-validates under the shard lock that the entry is exactly the one
// the splice was planned from, so a concurrent mutation (another
// repair, a scale action, a teardown) fails the commit instead of
// being silently overwritten. Returns the queue relinks to run after
// unlock.
func (c *Controller) commitRepair(sh *shard, t repairTarget, res spliceResult) ([]relinkOp, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := findEntryLocked(t)
	if e == nil {
		return nil, false
	}
	if res.lost {
		c.markLostLocked(e, res.lostReason)
		t.node.Map.Epoch++
		c.commitNodeLocked(t.node.Job, t.node)
		return nil, true
	}
	headChanged := res.newChain.Head() != e.Info
	e.Info = res.newChain.Head()
	e.Chain = chainField(res.newChain)
	e.Lost = false
	t.node.Map.Epoch++

	// Queue segments are stitched by redirects: a repaired segment's
	// predecessor must re-seal toward the new head, and a segment
	// restored from the persistent tier re-seals toward its successor
	// (the restored state may predate the original seal). The RPCs run
	// after unlock; only the neighbor entries are captured here.
	var relinks []relinkOp
	if t.dsType == core.DSQueue {
		if headChanged && e.Chunk > 0 {
			if p, ok := queueNeighborLocked(t.node, e.Chunk-1); ok {
				relinks = append(relinks, relinkOp{tail: p, next: e.Info})
			}
		}
		if res.relinkSuccessor {
			if s2, ok := queueNeighborLocked(t.node, e.Chunk+1); ok {
				relinks = append(relinks, relinkOp{tail: copyEntry(*e), next: s2.Info})
			}
		}
	}
	c.commitNodeLocked(t.node.Job, t.node)
	return relinks, true
}

// findEntryLocked re-locates t's entry and verifies it is unchanged
// since collection: same head, chunk, and chain, and not since marked
// lost or torn down. Caller holds the shard lock.
func findEntryLocked(t repairTarget) *ds.PartitionEntry {
	for i := range t.node.Map.Blocks {
		e := &t.node.Map.Blocks[i]
		if !e.Lost && e.Info == t.entry.Info && e.Chunk == t.entry.Chunk &&
			chainsEqual(e.Chain, t.entry.Chain) {
			return e
		}
	}
	return nil
}

// chainsEqual reports whether two chains have identical members in
// identical order.
func chainsEqual(a, b core.ReplicaChain) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// queueNeighborLocked finds the live entry at the given chunk index.
// Caller holds the shard lock; the returned entry is a copy.
func queueNeighborLocked(n *hierarchy.Node, chunk int) (ds.PartitionEntry, bool) {
	for _, e := range n.Map.Blocks {
		if e.Chunk == chunk && !e.Lost {
			return copyEntry(e), true
		}
	}
	return ds.PartitionEntry{}, false
}

// markLostLocked flags an entry as unrecoverable so clients fail fast
// with ErrBlockLost instead of retrying against a dead server.
func (c *Controller) markLostLocked(e *ds.PartitionEntry, reason string) {
	e.Lost = true
	e.Chain = nil
	c.blocksLost.Add(1)
	c.log.Error("controller: block lost", "block", e.Info.ID, "reason", reason)
}

// flushedKey looks up the persistent-tier snapshot key for the
// target's entry: it reads the prefix's flush manifest (via the flush
// key captured at collect time — no locks held) and matches the entry
// by its partition role (chunk index, and slot ranges for KV stores).
func (c *Controller) flushedKey(t repairTarget) (string, bool) {
	if t.flushKey == "" {
		return "", false
	}
	data, err := c.persist.Get(t.flushKey + "/manifest")
	if err != nil {
		return "", false
	}
	var m manifest
	if err := rpc.Unmarshal(data, &m); err != nil {
		return "", false
	}
	for _, me := range m.Entries {
		if me.Chunk != t.entry.Chunk {
			continue
		}
		if t.dsType == core.DSKV && !slotsEqual(me.Slots, t.entry.Slots) {
			continue
		}
		return me.Key, true
	}
	return "", false
}

// slotsEqual reports whether two slot-range lists are identical.
func slotsEqual(a, b []ds.SlotRange) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
