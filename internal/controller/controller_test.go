package controller_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/persist"
	"jiffy/internal/proto"
	"jiffy/internal/server"
)

// rig is a controller with live memory servers, driven in-process.
type rig struct {
	ctrl     *controller.Controller
	ctrlAddr string
	servers  []*server.Server
	vclock   *clock.Virtual
	store    *persist.MemStore
}

var rigSeq int

func newRig(t *testing.T, numServers, blocksPerServer int, virtualTime bool) *rig {
	t.Helper()
	rigSeq++
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	r := &rig{store: persist.NewMemStore()}
	opts := controller.Options{
		Config:        cfg,
		Persist:       r.store,
		DisableExpiry: true,
	}
	if virtualTime {
		r.vclock = clock.NewVirtual(time.Unix(0, 0))
		opts.Clock = r.vclock
	}
	ctrl, err := controller.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	r.ctrl = ctrl
	ctrlAddr, err := ctrl.Listen(fmt.Sprintf("mem://ctrl-test-%d", rigSeq))
	if err != nil {
		t.Fatal(err)
	}
	r.ctrlAddr = ctrlAddr
	for i := 0; i < numServers; i++ {
		srv, err := server.New(server.Options{
			Config:         cfg,
			ControllerAddr: ctrlAddr,
			Persist:        r.store,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Listen(fmt.Sprintf("mem://srv-test-%d-%d", rigSeq, i)); err != nil {
			t.Fatal(err)
		}
		if err := srv.Register(blocksPerServer); err != nil {
			t.Fatal(err)
		}
		r.servers = append(r.servers, srv)
	}
	t.Cleanup(func() {
		for _, s := range r.servers {
			s.Close()
		}
		ctrl.Close()
	})
	return r
}

func TestScaleDownKVMergesSiblings(t *testing.T) {
	r := newRig(t, 1, 16, false)
	if err := r.ctrl.RegisterJob("j"); err != nil {
		t.Fatal(err)
	}
	resp, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{
		Path: "j/t", Type: core.DSKV, InitialBlocks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Map.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(resp.Map.Blocks))
	}
	// Write a pair into each shard directly through the blockstore.
	st := r.servers[0].Store()
	var placed []string
	for i := 0; i < 100 && len(placed) < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		slot := ds.SlotOf(key, resp.Map.NumSlots)
		e, ok := resp.Map.BlockForSlot(slot)
		if !ok {
			t.Fatalf("no block for slot %d", slot)
		}
		if _, err := st.Apply(e.Info.ID, core.OpPut, [][]byte{[]byte(key), []byte("v")}); err == nil {
			placed = append(placed, key)
		}
	}
	// Merge block[0] away.
	down, err := r.ctrl.ScaleDown(proto.ScaleDownReq{Path: "j/t", Block: resp.Map.Blocks[0].Info.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(down.Map.Blocks) != 1 {
		t.Fatalf("blocks after merge = %d", len(down.Map.Blocks))
	}
	if down.Map.Epoch <= resp.Map.Epoch {
		t.Error("epoch did not advance")
	}
	// Survivor owns the whole slot space and holds every pair.
	surv := down.Map.Blocks[0]
	total := 0
	for _, rg := range surv.Slots {
		total += rg.Count()
	}
	if total != resp.Map.NumSlots {
		t.Errorf("survivor owns %d slots, want %d", total, resp.Map.NumSlots)
	}
	for _, key := range placed {
		if _, err := st.Apply(surv.Info.ID, core.OpGet, [][]byte{[]byte(key)}); err != nil {
			t.Errorf("key %q lost in merge: %v", key, err)
		}
	}
	// Freed block returned to the pool.
	stats := r.ctrl.Stats()
	if stats.AllocatedBlocks != 1 {
		t.Errorf("allocated = %d, want 1", stats.AllocatedBlocks)
	}
}

func TestScaleDownLastShardRefused(t *testing.T) {
	r := newRig(t, 1, 8, false)
	r.ctrl.RegisterJob("j")
	resp, _ := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/t", Type: core.DSKV})
	down, err := r.ctrl.ScaleDown(proto.ScaleDownReq{Path: "j/t", Block: resp.Map.Blocks[0].Info.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(down.Map.Blocks) != 1 {
		t.Error("last shard was reclaimed")
	}
}

func TestScaleUpStaleSignals(t *testing.T) {
	r := newRig(t, 1, 16, false)
	r.ctrl.RegisterJob("j")
	resp, _ := r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/f", Type: core.DSFile})
	// Unknown block: no-op, current map returned.
	up, err := r.ctrl.ScaleUp(proto.ScaleUpReq{Path: "j/f", Block: 9999})
	if err != nil || up.Map.Epoch != resp.Map.Epoch {
		t.Errorf("stale signal changed state: %v, epoch %d", err, up.Map.Epoch)
	}
	// Real signal grows the file by one chunk.
	up, err = r.ctrl.ScaleUp(proto.ScaleUpReq{Path: "j/f", Block: resp.Map.Blocks[0].Info.ID})
	if err != nil || len(up.Map.Blocks) != 2 {
		t.Fatalf("scale up = %d blocks, %v", len(up.Map.Blocks), err)
	}
	// Signaling the now-interior chunk is stale: no growth.
	again, err := r.ctrl.ScaleUp(proto.ScaleUpReq{Path: "j/f", Block: resp.Map.Blocks[0].Info.ID})
	if err != nil || len(again.Map.Blocks) != 2 {
		t.Errorf("stale chunk signal grew the file: %d blocks, %v", len(again.Map.Blocks), err)
	}
}

func TestExpiryWithVirtualClock(t *testing.T) {
	r := newRig(t, 1, 8, true)
	r.ctrl.RegisterJob("j")
	if _, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{
		Path: "j/t", Type: core.DSKV, LeaseDuration: 10 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	// Put data so the flush writes something.
	resp, _ := r.ctrl.Open("j/t")
	st := r.servers[0].Store()
	if _, err := st.Apply(resp.Map.Blocks[0].Info.ID, core.OpPut,
		[][]byte{[]byte("k"), []byte("v")}); err != nil {
		t.Fatal(err)
	}

	// Within the lease: no reclaim.
	r.vclock.Advance(5 * time.Second)
	if n := r.ctrl.ExpireNow(); n != 0 {
		t.Fatalf("expired %d prefixes early", n)
	}
	// Renewal pushes expiry out.
	if _, err := r.ctrl.RenewLease([]core.Path{"j/t"}); err != nil {
		t.Fatal(err)
	}
	r.vclock.Advance(8 * time.Second)
	if n := r.ctrl.ExpireNow(); n != 0 {
		t.Fatalf("expired despite renewal")
	}
	// Let it lapse.
	r.vclock.Advance(10 * time.Second)
	if n := r.ctrl.ExpireNow(); n != 1 {
		t.Fatalf("expired %d prefixes, want 1", n)
	}
	stats := r.ctrl.Stats()
	if stats.AllocatedBlocks != 0 {
		t.Errorf("blocks not reclaimed: %d", stats.AllocatedBlocks)
	}
	// The flush landed in the persistent store.
	keys, _ := r.store.List("jiffy-flush/j/t")
	if len(keys) < 2 { // manifest + block
		t.Errorf("flush objects = %v", keys)
	}
	// Open reloads transparently.
	reopened, err := r.ctrl.Open("j/t")
	if err != nil {
		t.Fatal(err)
	}
	if len(reopened.Map.Blocks) != 1 {
		t.Fatalf("reloaded blocks = %d", len(reopened.Map.Blocks))
	}
	if _, err := st.Apply(reopened.Map.Blocks[0].Info.ID, core.OpGet,
		[][]byte{[]byte("k")}); err != nil {
		t.Errorf("data lost across expiry: %v", err)
	}
}

func TestExpiryIdempotent(t *testing.T) {
	r := newRig(t, 1, 8, true)
	r.ctrl.RegisterJob("j")
	r.ctrl.CreatePrefix(proto.CreatePrefixReq{
		Path: "j/t", Type: core.DSFile, LeaseDuration: time.Second,
	})
	r.vclock.Advance(5 * time.Second)
	if n := r.ctrl.ExpireNow(); n != 1 {
		t.Fatalf("first scan expired %d", n)
	}
	// A second scan has nothing left to do.
	if n := r.ctrl.ExpireNow(); n != 0 {
		t.Errorf("second scan expired %d", n)
	}
}

func TestCreateHierarchyValidation(t *testing.T) {
	r := newRig(t, 1, 8, false)
	r.ctrl.RegisterJob("j")
	err := r.ctrl.CreateHierarchy(proto.CreateHierarchyReq{
		Job: "j",
		Nodes: []proto.DagNode{
			{Name: "child", Parents: []string{"missing-parent"}},
		},
	})
	if !errors.Is(err, core.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	// Unknown job.
	err = r.ctrl.CreateHierarchy(proto.CreateHierarchyReq{Job: "ghost"})
	if !errors.Is(err, core.ErrNotFound) {
		t.Errorf("unknown job err = %v", err)
	}
}

func TestLoadMissingCheckpoint(t *testing.T) {
	r := newRig(t, 1, 8, false)
	r.ctrl.RegisterJob("j")
	r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/t", Type: core.DSKV})
	if _, err := r.ctrl.LoadPrefix("j/t", "nowhere"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestRemovePrefixFreesBlocks(t *testing.T) {
	r := newRig(t, 1, 8, false)
	r.ctrl.RegisterJob("j")
	r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/t", Type: core.DSKV, InitialBlocks: 3})
	if s := r.ctrl.Stats(); s.AllocatedBlocks != 3 {
		t.Fatalf("allocated = %d", s.AllocatedBlocks)
	}
	if err := r.ctrl.RemovePrefix("j/t"); err != nil {
		t.Fatal(err)
	}
	if s := r.ctrl.Stats(); s.AllocatedBlocks != 0 {
		t.Errorf("allocated after remove = %d", s.AllocatedBlocks)
	}
	if _, err := r.ctrl.Open("j/t"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("open removed prefix = %v", err)
	}
}

func TestMultiServerPlacementSpreads(t *testing.T) {
	r := newRig(t, 4, 8, false)
	r.ctrl.RegisterJob("j")
	resp, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{
		Path: "j/t", Type: core.DSKV, InitialBlocks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	servers := map[string]int{}
	for _, e := range resp.Map.Blocks {
		servers[e.Info.Server]++
	}
	if len(servers) != 4 {
		t.Errorf("blocks placed on %d servers, want 4: %v", len(servers), servers)
	}
}

func TestOpenOnBarePrefix(t *testing.T) {
	r := newRig(t, 1, 8, false)
	r.ctrl.RegisterJob("j")
	r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "j/stage", Type: core.DSNone})
	if _, err := r.ctrl.Open("j/stage"); !errors.Is(err, core.ErrWrongType) {
		t.Errorf("open bare prefix = %v", err)
	}
}

func TestShardedControllerIndependence(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Shards: 8, DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	// Many jobs spread across shards; all register and renew correctly.
	for i := 0; i < 64; i++ {
		job := core.JobID(fmt.Sprintf("job%d", i))
		if err := ctrl.RegisterJob(job); err != nil {
			t.Fatal(err)
		}
	}
	stats := ctrl.Stats()
	if stats.Jobs != 64 {
		t.Errorf("jobs = %d", stats.Jobs)
	}
	for i := 0; i < 64; i++ {
		if _, err := ctrl.RenewLease([]core.Path{core.Path(fmt.Sprintf("job%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSaveRestoreState checkpoints a controller's metadata and rebuilds
// a fresh controller from it; the memory servers (and their data) keep
// running throughout, so the restored controller serves the same jobs.
func TestSaveRestoreState(t *testing.T) {
	r := newRig(t, 2, 16, false)
	r.ctrl.RegisterJob("jobA")
	r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "jobA/t1", Type: core.DSKV, InitialBlocks: 2})
	r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "jobA/t1/t2", Parents: []core.Path{"jobA/t1"}, Type: core.DSFile})
	r.ctrl.RegisterJob("jobB")
	r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "jobB/q", Type: core.DSQueue})
	// Put a pair through the data plane so we can check it survives.
	open, _ := r.ctrl.Open("jobA/t1")
	st := r.servers[0].Store()
	key := "survivor"
	var blockHost core.BlockID
	for _, e := range open.Map.Blocks {
		if _, err := st.Apply(e.Info.ID, core.OpPut, [][]byte{[]byte(key), []byte("v")}); err == nil {
			blockHost = e.Info.ID
			break
		}
	}

	if err := r.ctrl.SaveState("ckpt/controller"); err != nil {
		t.Fatal(err)
	}
	beforeStats := r.ctrl.Stats()

	// A fresh controller (same persistent store) restores the image.
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	ctrl2, err := controller.New(controller.Options{
		Config: cfg, Persist: r.store, DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl2.Close()
	if err := ctrl2.RestoreState("ckpt/controller"); err != nil {
		t.Fatal(err)
	}
	afterStats := ctrl2.Stats()
	if afterStats.Jobs != beforeStats.Jobs ||
		afterStats.Prefixes != beforeStats.Prefixes ||
		afterStats.AllocatedBlocks != beforeStats.AllocatedBlocks ||
		afterStats.FreeBlocks != beforeStats.FreeBlocks {
		t.Errorf("stats diverge: before=%+v after=%+v", beforeStats, afterStats)
	}
	// The restored map points at the same live blocks.
	open2, err := ctrl2.Open("jobA/t1")
	if err != nil {
		t.Fatal(err)
	}
	if len(open2.Map.Blocks) != len(open.Map.Blocks) {
		t.Fatalf("restored map has %d blocks", len(open2.Map.Blocks))
	}
	if blockHost != 0 {
		if _, err := st.Apply(blockHost, core.OpGet, [][]byte{[]byte(key)}); err != nil {
			t.Errorf("data unreachable after restore: %v", err)
		}
	}
	// Allocation continues without reusing live IDs.
	resp, err := ctrl2.CreatePrefix(proto.CreatePrefixReq{Path: "jobB/more", Type: core.DSKV})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range resp.Map.Blocks {
		for _, old := range open.Map.Blocks {
			if e.Info.ID == old.Info.ID {
				t.Errorf("block ID %v reused while still allocated", e.Info.ID)
			}
		}
	}
	// Restoring on top of existing jobs is refused.
	if err := ctrl2.RestoreState("ckpt/controller"); !errors.Is(err, core.ErrExists) {
		t.Errorf("double restore = %v", err)
	}
}

// TestSaveRestoreMultiParentDag checks topological ordering in the
// image: a node whose two parents sit in different subtrees.
func TestSaveRestoreMultiParentDag(t *testing.T) {
	r := newRig(t, 1, 16, false)
	r.ctrl.RegisterJob("dag")
	r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "dag/A", Type: core.DSNone})
	r.ctrl.CreatePrefix(proto.CreatePrefixReq{Path: "dag/B", Type: core.DSNone})
	// X's primary parent is A; B is an extra DAG edge. Names chosen so
	// a naive DFS (children in sorted order) visits X under A before B.
	if _, err := r.ctrl.CreatePrefix(proto.CreatePrefixReq{
		Path: "dag/A/X", Parents: []core.Path{"dag/B"}, Type: core.DSKV,
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.SaveState("ckpt/dag"); err != nil {
		t.Fatal(err)
	}
	cfg := core.TestConfig()
	ctrl2, err := controller.New(controller.Options{
		Config: cfg, Persist: r.store, DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl2.Close()
	if err := ctrl2.RestoreState("ckpt/dag"); err != nil {
		t.Fatal(err)
	}
	// Both addresses of X resolve.
	if _, err := ctrl2.Open("dag/A/X"); err != nil {
		t.Errorf("open via A: %v", err)
	}
	if _, err := ctrl2.Open("dag/B/X"); err != nil {
		t.Errorf("open via B: %v", err)
	}
	// Lease propagation still works across the restored DAG edges.
	n, err := ctrl2.RenewLease([]core.Path{"dag/A/X"})
	if err != nil || n != 3 { // X + parents A and B
		t.Errorf("renew = %d, %v (want 3)", n, err)
	}
}

// TestRestoreMissingImage reports ErrNotFound.
func TestRestoreMissingImage(t *testing.T) {
	r := newRig(t, 1, 8, false)
	if err := r.ctrl.RestoreState("ckpt/nothing"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}
