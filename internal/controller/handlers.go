package controller

import (
	"context"
	"fmt"

	"jiffy/internal/core"
	"jiffy/internal/proto"
	"jiffy/internal/rpc"
)

// handle is the controller's RPC dispatch table. The request context
// (span propagation, cancellation) is currently consumed by the rpc
// layer's dispatch instrumentation; controller-internal operations are
// lock-scoped and do not block on remote peers mid-request except via
// the server pool, which applies its own deadlines.
//
// Group methods (replication stream, role queries, promotion) dispatch
// on any member; everything else requires leadership and is answered
// with a NotLeaderError redirect on standbys. On the leader, a mutating
// request's response is withheld until the op-log reaches every live
// standby (repl.flush), so an acknowledged mutation survives failover.
func (c *Controller) handle(_ context.Context, _ *rpc.ServerConn, method uint16, payload []byte) ([]byte, error) {
	c.ops.Add(1)
	switch method {
	case proto.MethodCtrlReplicate:
		var req proto.CtrlReplicateReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		resp, err := c.handleReplicate(req)
		if err != nil {
			return []byte(err.Error()), err
		}
		return rpc.Marshal(resp)

	case proto.MethodCtrlBootstrap:
		var req proto.CtrlBootstrapReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		resp, err := c.handleBootstrap(req)
		if err != nil {
			return []byte(err.Error()), err
		}
		return rpc.Marshal(resp)

	case proto.MethodCtrlRole:
		return rpc.Marshal(c.Role())

	case proto.MethodCtrlPromote:
		return rpc.Marshal(proto.CtrlPromoteResp{Gen: c.PromoteNow()})
	}

	if !c.leading.Load() {
		nl := c.notLeaderErr()
		return []byte(nl.Error()), nl
	}
	resp, err := c.dispatch(method, payload)
	if err != nil {
		return resp, err
	}
	// Withhold the ack until live standbys have the ops this request
	// emitted; a no-op when nothing was emitted or no group is set.
	if ferr := c.repl.flush(); ferr != nil {
		return []byte(ferr.Error()), ferr
	}
	return resp, nil
}

func (c *Controller) dispatch(method uint16, payload []byte) ([]byte, error) {
	switch method {
	case proto.MethodRegisterJob:
		var req proto.RegisterJobReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := c.RegisterJob(req.Job); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.RegisterJobResp{})

	case proto.MethodDeregisterJob:
		var req proto.DeregisterJobReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := c.DeregisterJob(req.Job); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.DeregisterJobResp{})

	case proto.MethodCreatePrefix:
		var req proto.CreatePrefixReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		resp, err := c.CreatePrefix(req)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(resp)

	case proto.MethodCreateHierarchy:
		var req proto.CreateHierarchyReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := c.CreateHierarchy(req); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.CreateHierarchyResp{})

	case proto.MethodRemovePrefix:
		var req proto.RemovePrefixReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := c.RemovePrefix(req.Path); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.RemovePrefixResp{})

	case proto.MethodRenewLease:
		var req proto.RenewLeaseReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		n, err := c.RenewLease(req.Paths)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.RenewLeaseResp{Renewed: n})

	case proto.MethodLeaseInfo:
		var req proto.LeaseInfoReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		resp, err := c.LeaseInfo(req.Path)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(resp)

	case proto.MethodOpen:
		var req proto.OpenReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		resp, err := c.Open(req.Path)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(resp)

	case proto.MethodFlushPrefix:
		var req proto.FlushPrefixReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		n, err := c.FlushPrefix(req.Path, req.ExternalPath)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.FlushPrefixResp{Blocks: n})

	case proto.MethodLoadPrefix:
		var req proto.LoadPrefixReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		resp, err := c.LoadPrefix(req.Path, req.ExternalPath)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(resp)

	case proto.MethodRegisterServer:
		var req proto.RegisterServerReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		first, err := c.RegisterServer(req.Addr, req.NumBlocks)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.RegisterServerResp{FirstID: first})

	case proto.MethodHeartbeat:
		var req proto.HeartbeatReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		epoch, err := c.Heartbeat(req.Addr)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.HeartbeatResp{Epoch: epoch})

	case proto.MethodReportFailure:
		var req proto.ReportFailureReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := c.ReportFailure(req); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.ReportFailureResp{})

	case proto.MethodReportTier:
		var req proto.ReportTierReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		resp, err := c.ReportTier(req)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(resp)

	case proto.MethodDrainServer:
		var req proto.DrainServerReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		migrated, err := c.DrainServer(req.Addr)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.DrainServerResp{Migrated: migrated})

	case proto.MethodScaleUp:
		var req proto.ScaleUpReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		resp, err := c.ScaleUp(req)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(resp)

	case proto.MethodScaleDown:
		var req proto.ScaleDownReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		resp, err := c.ScaleDown(req)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(resp)

	case proto.MethodSaveState:
		var req proto.SaveStateReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := c.SaveState(req.Key); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.SaveStateResp{})

	case proto.MethodControllerStats:
		return rpc.Marshal(c.Stats())

	case proto.MethodSetQuota:
		var req proto.SetQuotaReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := c.SetQuota(req.Path, req.Quota); err != nil {
			return nil, err
		}
		return rpc.Marshal(proto.SetQuotaResp{})

	case proto.MethodListPrefixes:
		var req proto.ListPrefixesReq
		if err := rpc.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		resp, err := c.ListPrefixes(req.Job)
		if err != nil {
			return nil, err
		}
		return rpc.Marshal(resp)

	default:
		return nil, fmt.Errorf("controller: unknown method %#x: %w", method, core.ErrNotFound)
	}
}
