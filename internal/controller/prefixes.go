package controller

import (
	"fmt"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/hierarchy"
	"jiffy/internal/proto"
)

// CreatePrefix implements createAddrPrefix (§4.1): adds a node to the
// job's hierarchy and, when a data structure type is given, provisions
// its initial blocks.
func (c *Controller) CreatePrefix(req proto.CreatePrefixReq) (proto.CreatePrefixResp, error) {
	var resp proto.CreatePrefixResp
	lease := req.LeaseDuration
	if lease <= 0 {
		lease = c.cfg.LeaseDuration
	}
	err := c.withJob(req.Path.Job(), func(h *hierarchy.Hierarchy) error {
		n, err := h.Create(req.Path, req.Parents, req.Type, lease, c.clk.Now())
		if err != nil {
			return err
		}
		if req.Type != core.DSNone {
			if err := c.provisionLocked(n, req.Type, req.InitialBlocks, req.MaxBlocks); err != nil {
				// Roll the node back so a retry can succeed.
				h.Remove(n.Name)
				return err
			}
		}
		c.commitNodeLocked(n.Job, n)
		resp.Map = n.Map.Clone()
		resp.LeaseDuration = lease
		return nil
	})
	return resp, err
}

// provisionLocked allocates and installs a data structure's initial
// blocks. Caller holds the shard lock.
func (c *Controller) provisionLocked(n *hierarchy.Node, t core.DSType, initialBlocks, maxBlocks int) error {
	if initialBlocks <= 0 {
		initialBlocks = 1
	}
	if maxBlocks > 0 && initialBlocks > maxBlocks {
		initialBlocks = maxBlocks
	}
	if t == core.DSKV && initialBlocks > c.cfg.NumHashSlots {
		initialBlocks = c.cfg.NumHashSlots
	}
	if err := c.checkMemoryQuotaLocked(n, initialBlocks*c.cfg.ChainLength); err != nil {
		return err
	}
	chains, err := c.allocateChains(initialBlocks)
	if err != nil {
		return err
	}
	freeAll := func() {
		for _, chain := range chains {
			c.alloc.Free(chain)
		}
	}
	path := n.CanonicalPath()
	m := ds.PartitionMap{Type: t, Epoch: 1, MaxBlocks: maxBlocks}
	switch t {
	case core.DSFile:
		m.ChunkSize = c.cfg.BlockSize
		for i, chain := range chains {
			if err := c.createChainOnServers(chain, path, t, i, nil); err != nil {
				freeAll()
				return err
			}
			m.Blocks = append(m.Blocks, entryFor(chain, i, nil))
		}
	case core.DSQueue:
		for i, chain := range chains {
			if err := c.createChainOnServers(chain, path, t, i, nil); err != nil {
				freeAll()
				return err
			}
			m.Blocks = append(m.Blocks, entryFor(chain, i, nil))
		}
		// Pre-provisioned segments form a linked list up front.
		for i := 0; i+1 < len(m.Blocks); i++ {
			if err := c.setNextOnChain(m.Blocks[i], m.Blocks[i+1].Info); err != nil {
				freeAll()
				return err
			}
		}
	case core.DSKV:
		m.NumSlots = c.cfg.NumHashSlots
		per := c.cfg.NumHashSlots / len(chains)
		for i, chain := range chains {
			lo := i * per
			hi := lo + per - 1
			if i == len(chains)-1 {
				hi = c.cfg.NumHashSlots - 1
			}
			slots := []ds.SlotRange{{Lo: lo, Hi: hi}}
			if err := c.createChainOnServers(chain, path, t, i, slots); err != nil {
				freeAll()
				return err
			}
			m.Blocks = append(m.Blocks, entryFor(chain, i, slots))
		}
	default:
		if !ds.IsCustom(t) {
			freeAll()
			return fmt.Errorf("controller: %w: %v", core.ErrWrongType, t)
		}
		// Custom structures get file-like elasticity: chunk-indexed
		// blocks, scale-up appends.
		m.ChunkSize = c.cfg.BlockSize
		for i, chain := range chains {
			if err := c.createChainOnServers(chain, path, t, i, nil); err != nil {
				freeAll()
				return err
			}
			m.Blocks = append(m.Blocks, entryFor(chain, i, nil))
		}
	}
	n.Map = m
	return nil
}

// CreateHierarchy implements createHierarchy (§4.1): builds the whole
// address hierarchy from an execution DAG in one call. Nodes must be
// listed parents-before-children.
func (c *Controller) CreateHierarchy(req proto.CreateHierarchyReq) error {
	lease := req.LeaseDuration
	if lease <= 0 {
		lease = c.cfg.LeaseDuration
	}
	return c.withJob(req.Job, func(h *hierarchy.Hierarchy) error {
		for _, node := range req.Nodes {
			var path core.Path
			var extra []core.Path
			if len(node.Parents) == 0 {
				path = h.Root().CanonicalPath().MustChild(node.Name)
			} else {
				first, ok := h.Lookup(node.Parents[0])
				if !ok {
					return fmt.Errorf("controller: dag parent %q: %w",
						node.Parents[0], core.ErrNotFound)
				}
				path = first.CanonicalPath().MustChild(node.Name)
				for _, p := range node.Parents[1:] {
					pn, ok := h.Lookup(p)
					if !ok {
						return fmt.Errorf("controller: dag parent %q: %w", p, core.ErrNotFound)
					}
					extra = append(extra, pn.CanonicalPath())
				}
			}
			n, err := h.Create(path, extra, node.Type, lease, c.clk.Now())
			if err != nil {
				return err
			}
			if node.Type != core.DSNone {
				if err := c.provisionLocked(n, node.Type, node.InitialBlocks, node.MaxBlocks); err != nil {
					return err
				}
			}
			c.commitNodeLocked(n.Job, n)
		}
		return nil
	})
}

// RemovePrefix explicitly reclaims a prefix and its blocks (the
// "application explicitly reclaims" path of §3.1).
func (c *Controller) RemovePrefix(path core.Path) error {
	return c.withJob(path.Job(), func(h *hierarchy.Hierarchy) error {
		n, err := h.Resolve(path)
		if err != nil {
			return err
		}
		c.releaseBlocksLocked(n)
		if err := h.Remove(n.Name); err != nil {
			// The node stays (it still has children); replicate its
			// emptied partition map instead of a removal.
			c.commitNodeLocked(n.Job, n)
			return err
		}
		c.shardFor(n.Job).dropNodeIndexLocked(n)
		c.repl.emit(replOp{Kind: opRemoveNode, Job: n.Job, Name: n.Name})
		return nil
	})
}

// RenewLease implements the renewal service: refresh the given
// prefixes plus their propagation sets (§3.2).
func (c *Controller) RenewLease(paths []core.Path) (int, error) {
	c.renews.Add(1)
	now := c.clk.Now()
	total := 0
	// Replicate the whole batch even on partial failure: standbys apply
	// renewals best-effort, and renewing a path the leader rejected is
	// harmless (the standby rejects it identically).
	defer func() {
		if total > 0 {
			c.repl.emit(replOp{Kind: opRenewLease, Paths: paths, Now: now})
		}
	}()
	for _, p := range paths {
		err := c.withJob(p.Job(), func(h *hierarchy.Hierarchy) error {
			n, err := h.Renew(p, now)
			total += n
			return err
		})
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// LeaseInfo reports a prefix's lease configuration and state.
func (c *Controller) LeaseInfo(path core.Path) (proto.LeaseInfoResp, error) {
	var resp proto.LeaseInfoResp
	err := c.withJob(path.Job(), func(h *hierarchy.Hierarchy) error {
		n, err := h.Resolve(path)
		if err != nil {
			return err
		}
		resp.Duration = n.LeaseDuration
		resp.LastRenewed = n.LastRenewed
		return nil
	})
	return resp, err
}

// Open returns a prefix's current partition map (the client-side
// handle acquisition of initDataStructure). Opening a flushed prefix
// reloads it from the persistent tier first.
func (c *Controller) Open(path core.Path) (proto.OpenResp, error) {
	var resp proto.OpenResp
	err := c.withJob(path.Job(), func(h *hierarchy.Hierarchy) error {
		n, err := h.Resolve(path)
		if err != nil {
			return err
		}
		if n.Type == core.DSNone {
			return fmt.Errorf("controller: prefix %q has no data structure: %w",
				path, core.ErrWrongType)
		}
		if n.Flushed {
			if err := c.loadLocked(n, n.FlushKey); err != nil {
				return err
			}
			c.commitNodeLocked(n.Job, n)
		}
		resp.Map = n.Map.Clone()
		resp.LeaseDuration = n.LeaseDuration
		return nil
	})
	if err == nil {
		// Tell the client which servers are on gray-failure probation so
		// its hedge-target ranking skips them.
		resp.Probation = c.ProbationList()
	}
	return resp, err
}

// ListPrefixes reports a job's hierarchy (CLI/diagnostics).
func (c *Controller) ListPrefixes(job core.JobID) (proto.ListPrefixesResp, error) {
	var resp proto.ListPrefixesResp
	err := c.withJob(job, func(h *hierarchy.Hierarchy) error {
		h.Walk(func(n *hierarchy.Node) bool {
			resp.Prefixes = append(resp.Prefixes, proto.PrefixInfo{
				Path:        n.CanonicalPath(),
				Type:        n.Type,
				Blocks:      len(n.Map.Blocks),
				LastRenewed: n.LastRenewed,
			})
			return true
		})
		return nil
	})
	return resp, err
}

// Stats reports controller-wide statistics, including the metadata
// footprint measured in §6.4.
func (c *Controller) Stats() proto.ControllerStatsResp {
	total, free, servers := c.alloc.Stats()
	resp := proto.ControllerStatsResp{
		TotalBlocks:     total,
		FreeBlocks:      free,
		AllocatedBlocks: total - free,
		Servers:         servers,
		DegradedServers: c.ProbationList(),
	}
	for _, s := range c.shards {
		s.mu.Lock()
		resp.Jobs += len(s.jobs)
		for _, h := range s.jobs {
			resp.Prefixes += h.Len()
			resp.MetadataBytes += h.MetadataBytes()
		}
		s.mu.Unlock()
	}
	return resp
}
