package controller

import (
	"fmt"
	"sort"
	"time"

	"jiffy/internal/alloc"
	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/hierarchy"
	"jiffy/internal/rpc"
)

// Controller state checkpointing. The paper adopts primary-backup
// fault tolerance for the control plane (§4.2.1, citing ZooKeeper-style
// mechanisms); the building block either way is a serializable image of
// the controller's two pieces of system-wide state — the free block
// list and the per-job address hierarchies. SaveState writes that image
// to the persistent store; a fresh controller started with RestoreState
// resumes serving the same jobs, whose data still lives untouched on
// the memory servers.

// stateImage is the serialized controller state.
type stateImage struct {
	SavedAt time.Time
	// Allocator state.
	Servers []serverImage
	NextID  core.BlockID
	// Jobs' hierarchies.
	Jobs []jobImage
}

type serverImage struct {
	Addr   string
	Total  int
	FreeID []core.BlockID
}

type jobImage struct {
	Job   core.JobID
	Nodes []nodeImage
}

// nodeImage serializes one hierarchy node; parents are recorded by
// name, and nodes are emitted parents-before-children so restoration
// can rebuild edges in one pass.
type nodeImage struct {
	Name          string
	Parents       []string
	LeaseDuration time.Duration
	LastRenewed   time.Time
	Type          core.DSType
	Map           ds.PartitionMap
	Flushed       bool
	FlushKey      string
	Quota         core.Quota
}

// SaveState checkpoints the controller's metadata into the persistent
// store under key.
func (c *Controller) SaveState(key string) error {
	img := stateImage{SavedAt: c.clk.Now()}

	// Allocator state.
	servers, nextID := c.alloc.Snapshot()
	for _, s := range servers {
		img.Servers = append(img.Servers, serverImage{
			Addr: s.Addr, Total: s.Total, FreeID: s.Free,
		})
	}
	img.NextID = nextID

	// Hierarchies, shard by shard.
	for _, sh := range c.shards {
		sh.mu.Lock()
		jobs := make([]core.JobID, 0, len(sh.jobs))
		for j := range sh.jobs {
			jobs = append(jobs, j)
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i] < jobs[j] })
		for _, j := range jobs {
			img.Jobs = append(img.Jobs, dumpJob(j, sh.jobs[j]))
		}
		sh.mu.Unlock()
	}

	data, err := rpc.Marshal(img)
	if err != nil {
		return err
	}
	return c.persist.Put(key, data)
}

// dumpJob serializes one hierarchy strictly parents-before-children
// (topological order — plain DFS is not enough, since a multi-parent
// node can be reached before all of its parents have been visited).
func dumpJob(job core.JobID, h *hierarchy.Hierarchy) jobImage {
	img := jobImage{Job: job}
	// Root sentinel first: restore re-creates it via hierarchy.New.
	root := h.Root()
	img.Nodes = append(img.Nodes, nodeImage{
		Name:          root.Name,
		LeaseDuration: root.LeaseDuration,
		LastRenewed:   root.LastRenewed,
		Quota:         root.Quota,
	})

	// Collect the remaining nodes and their parent edges.
	var all []*hierarchy.Node
	h.Walk(func(n *hierarchy.Node) bool {
		if n != root {
			all = append(all, n)
		}
		return true
	})
	emitted := map[string]bool{root.Name: true}
	for len(all) > 0 {
		progressed := false
		rest := all[:0]
		for _, n := range all {
			ready := true
			var parents []string
			for _, p := range n.Parents() {
				parents = append(parents, p.Name)
				if !emitted[p.Name] {
					ready = false
				}
			}
			if !ready {
				rest = append(rest, n)
				continue
			}
			img.Nodes = append(img.Nodes, nodeImage{
				Name:          n.Name,
				Parents:       parents,
				LeaseDuration: n.LeaseDuration,
				LastRenewed:   n.LastRenewed,
				Type:          n.Type,
				Map:           n.Map.Clone(),
				Flushed:       n.Flushed,
				FlushKey:      n.FlushKey,
				Quota:         n.Quota,
			})
			emitted[n.Name] = true
			progressed = true
		}
		all = rest
		if !progressed {
			// A cycle would be a hierarchy invariant violation; emit
			// nothing further rather than looping forever.
			break
		}
	}
	return img
}

// RestoreState rebuilds the controller's metadata from a checkpoint.
// Must be called on a fresh controller (no registered jobs); the memory
// servers referenced by the image must still hold their blocks.
func (c *Controller) RestoreState(key string) error {
	data, err := c.persist.Get(key)
	if err != nil {
		return fmt.Errorf("controller: restore %q: %w", key, err)
	}
	var img stateImage
	if err := rpc.Unmarshal(data, &img); err != nil {
		return err
	}

	// Allocator.
	servers := make([]alloc.ServerState, 0, len(img.Servers))
	for _, s := range img.Servers {
		servers = append(servers, alloc.ServerState{Addr: s.Addr, Total: s.Total, Free: s.FreeID})
	}
	c.alloc.Restore(servers, img.NextID)

	// Hierarchies.
	for _, ji := range img.Jobs {
		sh := c.shardFor(ji.Job)
		sh.mu.Lock()
		if _, exists := sh.jobs[ji.Job]; exists {
			sh.mu.Unlock()
			return fmt.Errorf("controller: job %q already present: %w", ji.Job, core.ErrExists)
		}
		h, err := restoreJob(ji, c.clk.Now())
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		sh.jobs[ji.Job] = h
		sh.mu.Unlock()
	}
	return nil
}

func restoreJob(img jobImage, now time.Time) (*hierarchy.Hierarchy, error) {
	if len(img.Nodes) == 0 {
		return nil, fmt.Errorf("controller: empty job image for %q", img.Job)
	}
	root := img.Nodes[0]
	h := hierarchy.New(img.Job, root.LeaseDuration, now)
	h.Root().LastRenewed = root.LastRenewed
	h.Root().Quota = root.Quota
	for _, ni := range img.Nodes[1:] {
		// Resolve the primary parent's canonical path; extra parents
		// become DAG edges.
		if len(ni.Parents) == 0 {
			return nil, fmt.Errorf("controller: node %q has no parents in image", ni.Name)
		}
		first, ok := h.Lookup(ni.Parents[0])
		if !ok {
			return nil, fmt.Errorf("controller: image parent %q missing (order broken)", ni.Parents[0])
		}
		var extra []core.Path
		for _, p := range ni.Parents[1:] {
			pn, ok := h.Lookup(p)
			if !ok {
				return nil, fmt.Errorf("controller: image parent %q missing", p)
			}
			extra = append(extra, pn.CanonicalPath())
		}
		n, err := h.Create(first.CanonicalPath().MustChild(ni.Name), extra,
			ni.Type, ni.LeaseDuration, now)
		if err != nil {
			return nil, err
		}
		n.LastRenewed = ni.LastRenewed
		n.Map = ni.Map
		n.Flushed = ni.Flushed
		n.FlushKey = ni.FlushKey
		n.Quota = ni.Quota
	}
	return h, nil
}
