package controller_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"jiffy/internal/clock"
	"jiffy/internal/controller"
	"jiffy/internal/core"
	"jiffy/internal/persist"
	"jiffy/internal/proto"
	"jiffy/internal/server"
)

// recordingStore logs every persisted key in order and fires an
// optional hook on each Put, so tests can observe cluster state at the
// exact moment a flush lands.
type recordingStore struct {
	persist.Store
	mu    sync.Mutex
	keys  []string
	onPut func(key string)
}

func (r *recordingStore) Put(key string, data []byte) error {
	r.mu.Lock()
	r.keys = append(r.keys, key)
	hook := r.onPut
	r.mu.Unlock()
	if hook != nil {
		hook(key)
	}
	return r.Store.Put(key, data)
}

func (r *recordingStore) setOnPut(f func(string)) {
	r.mu.Lock()
	r.onPut = f
	r.mu.Unlock()
}

func (r *recordingStore) logged() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.keys...)
}

// TestExpiryFlushesBeforeReclaim drives a lease to expiry on the
// virtual clock and proves the §3.2 ordering: the expired prefix's
// blocks are flushed to the persistent tier strictly BEFORE they are
// reclaimed. Observed three ways: (1) when the flush manifest is
// written the block still serves reads, (2) the persist log shows the
// block snapshot preceding its manifest, (3) the data survives the
// round trip — reclaimed blocks reload through Open.
func TestExpiryFlushesBeforeReclaim(t *testing.T) {
	rs := &recordingStore{Store: persist.NewMemStore()}
	vclock := clock.NewVirtual(time.Unix(0, 0))
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	ctrl, err := controller.New(controller.Options{
		Config: cfg, Persist: rs, Clock: vclock, DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	addr, err := ctrl.Listen("mem://fbr-ctrl")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{
		Config: cfg, ControllerAddr: addr, Persist: rs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Listen("mem://fbr-srv"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(8); err != nil {
		t.Fatal(err)
	}

	if err := ctrl.RegisterJob("j"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.CreatePrefix(proto.CreatePrefixReq{
		Path: "j/t", Type: core.DSKV, LeaseDuration: 10 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	open, err := ctrl.Open("j/t")
	if err != nil {
		t.Fatal(err)
	}
	blockID := open.Map.Blocks[0].Info.ID
	if _, err := srv.Store().Apply(blockID, core.OpPut,
		[][]byte{[]byte("k"), []byte("acked-write")}); err != nil {
		t.Fatal(err)
	}
	allocatedBefore := ctrl.Stats().AllocatedBlocks

	// The manifest is the last write of a flush: at that instant the
	// flush is complete but reclamation has not yet run, so the block
	// must still be live on its server.
	liveAtFlush := make(chan error, 1)
	rs.setOnPut(func(key string) {
		if key == "jiffy-flush/j/t/manifest" {
			_, err := srv.Store().Apply(blockID, core.OpGet, [][]byte{[]byte("k")})
			select {
			case liveAtFlush <- err:
			default:
			}
		}
	})

	// Nothing expires before the lease lapses...
	vclock.Advance(5 * time.Second)
	if n := ctrl.ExpireNow(); n != 0 {
		t.Fatalf("reclaimed %d prefixes with a live lease", n)
	}
	// ...and one scan past the lease reclaims exactly this prefix.
	vclock.Advance(6 * time.Second)
	if n := ctrl.ExpireNow(); n != 1 {
		t.Fatalf("expiry scan reclaimed %d prefixes, want 1", n)
	}

	select {
	case err := <-liveAtFlush:
		if err != nil {
			t.Errorf("block already reclaimed when the flush manifest was written: %v", err)
		}
	default:
		t.Fatal("expiry never wrote a flush manifest")
	}

	// The persist log shows the snapshot strictly before its manifest.
	keys := rs.logged()
	blockAt, manifestAt := -1, -1
	for i, k := range keys {
		switch {
		case strings.HasPrefix(k, "jiffy-flush/j/t/block-"):
			if blockAt < 0 {
				blockAt = i
			}
		case k == "jiffy-flush/j/t/manifest":
			manifestAt = i
		}
	}
	if blockAt < 0 || manifestAt < 0 || blockAt >= manifestAt {
		t.Errorf("flush write order wrong: block snapshot at %d, manifest at %d (log %v)",
			blockAt, manifestAt, keys)
	}

	// Reclamation did happen — after the flush.
	if got := ctrl.Stats().AllocatedBlocks; got >= allocatedBefore {
		t.Errorf("blocks not reclaimed: allocated %d -> %d", allocatedBefore, got)
	}

	// And no acked write was lost: Open reloads the flushed prefix.
	reopened, err := ctrl.Open("j/t")
	if err != nil {
		t.Fatal(err)
	}
	vals, err := srv.Store().Apply(reopened.Map.Blocks[0].Info.ID, core.OpGet,
		[][]byte{[]byte("k")})
	if err != nil {
		t.Fatalf("acked write lost across lease expiry: %v", err)
	}
	if len(vals) == 0 || string(vals[0]) != "acked-write" {
		t.Errorf("reloaded value = %q, want %q", vals, "acked-write")
	}
}
