package controller

import (
	"fmt"

	"jiffy/internal/core"
	"jiffy/internal/ds"
	"jiffy/internal/hierarchy"
	"jiffy/internal/proto"
)

// ScaleUp handles an overload signal for a block (Fig. 8): allocate a
// new block from the free list, install it, trigger data-structure
// specific repartitioning, and advance the map epoch. Signals may be
// stale (the structure already scaled, or the block is no longer the
// relevant one); those return the current map unchanged so the caller
// simply refreshes.
func (c *Controller) ScaleUp(req proto.ScaleUpReq) (proto.ScaleUpResp, error) {
	var resp proto.ScaleUpResp
	err := c.withJob(req.Path.Job(), func(h *hierarchy.Hierarchy) error {
		n, err := h.Resolve(req.Path)
		if err != nil {
			return err
		}
		defer func() { resp.Map = n.Map.Clone() }()
		idx := blockIndex(&n.Map, req.Block)
		if idx < 0 {
			return nil // stale signal: block already gone
		}
		if n.Map.AtMaxBlocks() {
			return nil // bounded structure: refuse growth (maxQueueLength)
		}
		if err := c.checkMemoryQuotaLocked(n, c.cfg.ChainLength); err != nil {
			return err
		}
		switch n.Map.Type {
		case core.DSFile:
			return c.scaleUpFile(n, idx)
		case core.DSQueue:
			return c.scaleUpQueue(n, idx)
		case core.DSKV:
			return c.scaleUpKV(n, idx)
		default:
			if ds.IsCustom(n.Map.Type) {
				// Custom structures grow like files: append a chunk.
				return c.scaleUpFile(n, idx)
			}
			return fmt.Errorf("controller: scale up on %v: %w", n.Map.Type, core.ErrWrongType)
		}
	})
	if err == nil {
		c.scaleUps.Add(1)
	}
	return resp, err
}

func blockIndex(m *ds.PartitionMap, id core.BlockID) int {
	for i, e := range m.Blocks {
		if e.Info.ID == id {
			return i
		}
	}
	return -1
}

// scaleUpFile appends the next chunk block if the signaled block is
// currently the last chunk (files only grow at the end; §5.1).
func (c *Controller) scaleUpFile(n *hierarchy.Node, idx int) error {
	maxChunk := 0
	for _, e := range n.Map.Blocks {
		if e.Chunk > maxChunk {
			maxChunk = e.Chunk
		}
	}
	if n.Map.Blocks[idx].Chunk != maxChunk {
		return nil // stale: a later chunk already exists
	}
	// n.Map.Type rather than DSFile: custom structures share this
	// append-a-chunk growth path.
	chain, err := c.provisionChain(n.CanonicalPath(), n.Map.Type, maxChunk+1, nil)
	if err != nil {
		return err
	}
	n.Map.Blocks = append(n.Map.Blocks, entryFor(chain, maxChunk+1, nil))
	n.Map.Epoch++
	c.commitNodeLocked(n.Job, n)
	return nil
}

// scaleUpQueue appends a new tail segment and links the old tail to it
// (§5.2).
func (c *Controller) scaleUpQueue(n *hierarchy.Node, idx int) error {
	tail, _ := n.Map.Tail()
	if n.Map.Blocks[idx].Info.ID != tail.Info.ID {
		return nil // stale: not the tail anymore
	}
	chain, err := c.provisionChain(n.CanonicalPath(), core.DSQueue, tail.Chunk+1, nil)
	if err != nil {
		return err
	}
	if err := c.setNextOnChain(tail, chain.Head()); err != nil {
		c.deleteChainOnServers(entryFor(chain, tail.Chunk+1, nil))
		c.alloc.Free(chain)
		return err
	}
	n.Map.Blocks = append(n.Map.Blocks, entryFor(chain, tail.Chunk+1, nil))
	n.Map.Epoch++
	c.commitNodeLocked(n.Job, n)
	return nil
}

// scaleUpKV splits an overloaded shard: reassign the upper half of its
// hash slots to a new block and move the corresponding pairs (§5.3).
// The controller owns the authoritative slot assignment, so it computes
// the split itself and ships only the move to the data plane.
func (c *Controller) scaleUpKV(n *hierarchy.Node, idx int) error {
	donor := &n.Map.Blocks[idx]
	upper := upperHalf(donor.Slots)
	if upper == nil {
		return nil // single-slot shard; cannot split further
	}
	// The new chain starts owning nothing; the move transfers ownership
	// along with the data into every member.
	chain, err := c.provisionChain(n.CanonicalPath(), core.DSKV, 0, nil)
	if err != nil {
		return err
	}
	newEntry := entryFor(chain, 0, upper)
	if err := c.moveSlotRanges(*donor, upper, newEntry.Replicas()); err != nil {
		c.deleteChainOnServers(newEntry)
		c.alloc.Free(chain)
		return err
	}
	donor.Slots = subtractAll(donor.Slots, upper)
	n.Map.Blocks = append(n.Map.Blocks, newEntry)
	n.Map.Epoch++
	c.commitNodeLocked(n.Job, n)
	return nil
}

// moveSlotRanges moves ranges — pairs and slot ownership — from every
// replica of donor into every member of targets. It deliberately never
// restores a live replica from a snapshot: a restore would clobber
// writes the chain acknowledged while the snapshot was in flight (the
// repair path obeys the same rule — survivors are never restored).
//
// Exports run tail first. The tail holds exactly the acknowledged
// prefix of the chain, so once its export succeeds no acknowledged pair
// can be lost; upstream members' exports land on the targets afterwards
// in chain order, so the head's (newest) value of each moved key wins.
// A write racing the move is either captured by an upstream export or
// rejected once its replica has disowned the slot — rejected writes are
// never acknowledged and the client retries against the refreshed map.
func (c *Controller) moveSlotRanges(donor ds.PartitionEntry, ranges []ds.SlotRange,
	targets core.ReplicaChain) error {
	members := donor.Replicas()
	var exports [][]ds.KVEntry
	var sources core.ReplicaChain
	// undo re-imports everything exported so far back into its source
	// replica, restoring pairs and ownership.
	undo := func() {
		for i := range exports {
			if err := c.importEntriesOnServer(sources[i], ranges, exports[i]); err != nil {
				c.log.Warn("controller: slot-move undo failed; replica dropped moved pairs",
					"block", sources[i].ID, "on", sources[i].Server, "err", err)
			}
		}
	}
	for i := len(members) - 1; i >= 0; i-- {
		entries, err := c.exportSlotsOnServer(members[i], ranges)
		if err != nil {
			undo()
			return err
		}
		exports = append(exports, entries)
		sources = append(sources, members[i])
	}
	for _, entries := range exports {
		for _, t := range targets {
			err := c.importEntriesOnServer(t, ranges, entries)
			if err != nil {
				err = c.importEntriesOnServer(t, ranges, entries)
			}
			if err != nil {
				undo()
				return err
			}
		}
	}
	return nil
}

// ScaleDown handles an underload signal: merge the block's contents
// into a sibling (KV), or reclaim a drained head segment (queue), then
// return the block to the free list. File structures never shrink
// (append-only; §5.1).
func (c *Controller) ScaleDown(req proto.ScaleDownReq) (proto.ScaleDownResp, error) {
	var resp proto.ScaleDownResp
	err := c.withJob(req.Path.Job(), func(h *hierarchy.Hierarchy) error {
		n, err := h.Resolve(req.Path)
		if err != nil {
			return err
		}
		defer func() { resp.Map = n.Map.Clone() }()
		idx := blockIndex(&n.Map, req.Block)
		if idx < 0 {
			return nil // stale
		}
		switch n.Map.Type {
		case core.DSQueue:
			return c.scaleDownQueue(n, idx)
		case core.DSKV:
			return c.scaleDownKV(n, idx)
		default:
			return nil
		}
	})
	if err == nil {
		c.scaleDowns.Add(1)
	}
	return resp, err
}

// scaleDownQueue reclaims a drained (non-tail) segment.
func (c *Controller) scaleDownQueue(n *hierarchy.Node, idx int) error {
	tail, _ := n.Map.Tail()
	victim := n.Map.Blocks[idx]
	if victim.Info.ID == tail.Info.ID {
		return nil // never reclaim the tail
	}
	c.deleteChainOnServers(victim)
	c.alloc.Free(victim.Replicas())
	n.Map.Blocks = append(n.Map.Blocks[:idx], n.Map.Blocks[idx+1:]...)
	n.Map.Epoch++
	c.commitNodeLocked(n.Job, n)
	return nil
}

// scaleDownKV merges a nearly empty shard into a sibling: move all of
// its slots (and pairs) to the sibling with the fewest slots, then
// reclaim the block.
func (c *Controller) scaleDownKV(n *hierarchy.Node, idx int) error {
	if len(n.Map.Blocks) < 2 {
		return nil // last shard stays
	}
	victim := n.Map.Blocks[idx]
	// Choose the sibling with the fewest slots to keep slot counts
	// balanced.
	sibling := -1
	best := 1 << 30
	for i, e := range n.Map.Blocks {
		if i == idx {
			continue
		}
		count := 0
		for _, r := range e.Slots {
			count += r.Count()
		}
		if count < best {
			best, sibling = count, i
		}
	}
	// Move into every sibling replica directly: restoring the live
	// sibling chain from a snapshot would clobber writes it acked while
	// the snapshot was in flight (see moveSlotRanges).
	if err := c.moveSlotRanges(victim, victim.Slots,
		n.Map.Blocks[sibling].Replicas()); err != nil {
		return err
	}
	n.Map.Blocks[sibling].Slots = unionAll(n.Map.Blocks[sibling].Slots, victim.Slots)
	c.deleteChainOnServers(victim)
	c.alloc.Free(victim.Replicas())
	n.Map.Blocks = append(n.Map.Blocks[:idx], n.Map.Blocks[idx+1:]...)
	n.Map.Epoch++
	c.commitNodeLocked(n.Job, n)
	return nil
}

// upperHalf returns the top half of the slots covered by ranges, or
// nil when fewer than two slots are owned. Mirrors ds.(*KV).SplitUpper
// but runs on the controller's authoritative metadata.
func upperHalf(ranges []ds.SlotRange) []ds.SlotRange {
	total := 0
	for _, r := range ranges {
		total += r.Count()
	}
	if total < 2 {
		return nil
	}
	want := total / 2
	// Take slots from the high end.
	sorted := append([]ds.SlotRange(nil), ranges...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].Lo > sorted[i].Lo {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	var out []ds.SlotRange
	for _, r := range sorted {
		if want == 0 {
			break
		}
		take := r.Count()
		if take > want {
			take = want
		}
		out = append(out, ds.SlotRange{Lo: r.Hi - take + 1, Hi: r.Hi})
		want -= take
	}
	return out
}

// subtractAll removes sub from ranges slot-accurately.
func subtractAll(ranges, sub []ds.SlotRange) []ds.SlotRange {
	out := append([]ds.SlotRange(nil), ranges...)
	for _, s := range sub {
		next := out[:0:0]
		for _, r := range out {
			if s.Hi < r.Lo || s.Lo > r.Hi {
				next = append(next, r)
				continue
			}
			if r.Lo < s.Lo {
				next = append(next, ds.SlotRange{Lo: r.Lo, Hi: s.Lo - 1})
			}
			if r.Hi > s.Hi {
				next = append(next, ds.SlotRange{Lo: s.Hi + 1, Hi: r.Hi})
			}
		}
		out = next
	}
	return out
}

// unionAll merges two range sets (no coalescing needed for
// correctness, but adjacent ranges are joined for compactness).
func unionAll(a, b []ds.SlotRange) []ds.SlotRange {
	all := append(append([]ds.SlotRange(nil), a...), b...)
	if len(all) == 0 {
		return nil
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].Lo < all[i].Lo {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	out := []ds.SlotRange{all[0]}
	for _, r := range all[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}
