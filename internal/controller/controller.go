// Package controller implements Jiffy's unified control plane
// (§4.2.1): hierarchical address management, the block allocator and
// free list, the metadata manager (per-data-structure partition maps),
// and the lease manager (renewal service + expiry worker). Unlike
// Pocket's split control/metadata planes, Jiffy combines them into one
// service; this package is that service.
//
// Scaling: jobs are hash-partitioned across shards, each with its own
// lock, so control operations for different jobs proceed in parallel —
// the mechanism behind the near-linear multi-core scaling of Fig. 12(b).
package controller

import (
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"jiffy/internal/alloc"
	"jiffy/internal/clock"
	"jiffy/internal/core"
	"jiffy/internal/hierarchy"
	"jiffy/internal/obs"
	"jiffy/internal/persist"
	"jiffy/internal/proto"
	"jiffy/internal/rpc"
)

// Options configures a Controller.
type Options struct {
	// Config holds the system tunables (block size, thresholds, lease
	// defaults).
	Config core.Config
	// Shards is the number of independently locked job shards
	// (defaults to 1; Fig. 12(b) sweeps this).
	Shards int
	// Clock drives lease expiry (defaults to the wall clock).
	Clock clock.Clock
	// Persist is the external store used for flushes and loads
	// (defaults to an in-memory store).
	Persist persist.Store
	// Logger receives operational logs.
	Logger *slog.Logger
	// Dial customizes connections to memory servers (defaults to
	// rpc.Dial; tests inject in-process transports).
	Dial func(addr string) (*rpc.Client, error)
	// DisableExpiry turns the expiry worker off (trace-replay
	// simulations step it manually via ExpireNow).
	DisableExpiry bool
}

// Controller is the Jiffy control plane.
type Controller struct {
	cfg     core.Config
	clk     clock.Clock
	log     *slog.Logger
	persist persist.Store

	alloc  *alloc.Allocator
	shards []*shard

	servers *rpc.Pool
	rpcSrv  *rpc.Server

	stop chan struct{}
	wg   sync.WaitGroup

	// failure detection (see health.go): last heartbeat per live
	// server, the set of servers declared dead, and the membership
	// epoch that advances on every membership change.
	hbMu        sync.Mutex
	lastBeat    map[string]time.Time
	deadServers map[string]bool
	// probation is the set of servers confirmed alive but persistently
	// slow (gray failure): excluded from new allocation and hedge
	// ranking, distinct from dead — no chain splice. probationStreak
	// counts consecutive clean recovery probes (see health.go).
	probation       map[string]bool
	probationStreak map[string]int
	memberEpoch     atomic.Uint64

	// tenant rate quotas registered on job roots (see quota.go); the
	// table replays to servers that register after SetQuota.
	qMu          sync.Mutex
	tenantQuotas map[string]core.Quota

	// counters for stats and the Fig. 12 benchmarks
	ops         atomic.Int64
	renews      atomic.Int64
	expiries    atomic.Int64
	scaleUps    atomic.Int64
	scaleDowns  atomic.Int64
	flushBlocks atomic.Int64

	// recovery counters (see health.go / repair.go)
	srvFailures  atomic.Int64
	chainRepairs atomic.Int64
	blocksLost   atomic.Int64

	// tiered-block records reported by memory servers (see tier.go);
	// guarded by its own mutex, never the shard locks.
	tiers tierState

	// replicated-group state (see leadership.go / replication.go):
	// group membership and role, the leader-side op-log replicator, a
	// connection pool to peer controllers, and the standby-side apply
	// serializer. leading gates every client/server-facing method; it
	// defaults to true (a solo controller is its own leader).
	group      groupState
	repl       *replicator
	ctrlPeers  *rpc.Pool
	applyMu    sync.Mutex
	leading    atomic.Bool
	failovers  atomic.Int64
	boundAddr  string
	bgDisabled bool

	// telemetry: the counters above plus allocator and per-job gauges,
	// per-method RPC stats, and recent spans, served via Obs()/Spans().
	reg    *obs.Registry
	rpcm   *obs.RPCMetrics
	tracer *obs.Tracer
	spans  *obs.RingExporter
}

// New creates a controller; call Listen to serve RPCs, or drive it
// in-process through the exported methods.
func New(opts Options) (*Controller, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.Persist == nil {
		opts.Persist = persist.NewMemStore()
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	c := &Controller{
		cfg:             opts.Config,
		clk:             opts.Clock,
		log:             opts.Logger,
		persist:         opts.Persist,
		alloc:           alloc.New(),
		servers:         rpc.NewPool(rpc.WithTimeout(opts.Dial, opts.Config.RPCTimeout)),
		ctrlPeers:       rpc.NewPool(rpc.WithTimeout(opts.Dial, opts.Config.RPCTimeout)),
		stop:            make(chan struct{}),
		lastBeat:        make(map[string]time.Time),
		deadServers:     make(map[string]bool),
		probation:       make(map[string]bool),
		probationStreak: make(map[string]int),
		tenantQuotas:    make(map[string]core.Quota),
		bgDisabled:      opts.DisableExpiry,
	}
	for i := 0; i < opts.Shards; i++ {
		c.shards = append(c.shards, newShard())
	}
	c.group.contrib = make(map[string]contribRange)
	c.repl = newReplicator(c)
	c.leading.Store(true)
	c.instrument()
	if !opts.DisableExpiry {
		c.wg.Add(1)
		go c.expiryWorker()
	}
	// The failure detector shares the background-maintenance switch:
	// simulations that step time manually also step liveness manually
	// (CheckLivenessNow).
	if !opts.DisableExpiry && opts.Config.HeartbeatInterval > 0 && opts.Config.SuspicionWindow > 0 {
		c.wg.Add(1)
		go c.detectorWorker()
	}
	return c, nil
}

// instrument builds the controller's metric registry: lifetime counters
// (lease renewals/expiries, splits/merges, flush-before-reclaim),
// allocator pool gauges, and a per-job block-count collector. Gauges
// and collectors read controller state only at scrape time.
func (c *Controller) instrument() {
	c.reg = obs.NewRegistry()
	c.rpcm = obs.NewRPCMetrics("controller")
	c.rpcm.Register(c.reg, proto.MethodName)
	c.spans = obs.NewRingExporter(512)
	c.tracer = obs.NewTracer(c.spans, c.log)
	counters := []struct {
		name, help string
		v          *atomic.Int64
	}{
		{"jiffy_ctrl_control_ops_total", "control-plane RPCs handled", &c.ops},
		{"jiffy_ctrl_lease_renewals_total", "explicit lease renewals applied", &c.renews},
		{"jiffy_ctrl_lease_expiries_total", "prefixes flushed and reclaimed on lease expiry", &c.expiries},
		{"jiffy_ctrl_scale_ups_total", "block splits / scale-up actions", &c.scaleUps},
		{"jiffy_ctrl_scale_downs_total", "block merges / scale-down actions", &c.scaleDowns},
		{"jiffy_ctrl_flushed_blocks_total", "blocks flushed to the persistent tier", &c.flushBlocks},
		{"jiffy_ctrl_server_failures_total", "memory servers declared dead (or drained)", &c.srvFailures},
		{"jiffy_ctrl_chain_repairs_total", "partition entries repaired after a server failure", &c.chainRepairs},
		{"jiffy_ctrl_blocks_lost_total", "blocks lost with no replica or flushed copy", &c.blocksLost},
		{"jiffy_ctrl_tier_demotions_total", "block demotions to the persist tier reported by servers", &c.tiers.demotes},
		{"jiffy_ctrl_tier_promotions_total", "block rehydrations from the persist tier reported by servers", &c.tiers.promotes},
		{"jiffy_ctrl_tier_recoveries_total", "dead blocks rebuilt from their tier objects during chain repair", &c.tiers.recoveries},
		{"jiffy_ctrl_failovers_total", "leadership takeovers performed by this controller", &c.failovers},
	}
	c.reg.RegisterCollector(func(w io.Writer) {
		for _, ctr := range counters {
			obs.WriteHeader(w, ctr.name, ctr.help, "counter")
			obs.WriteSample(w, ctr.name, "", ctr.v.Load())
		}
	})
	c.reg.GaugeFunc("jiffy_ctrl_blocks_total", "blocks contributed by registered servers",
		func() int64 { total, _, _ := c.alloc.Stats(); return int64(total) })
	c.reg.GaugeFunc("jiffy_ctrl_blocks_free", "blocks on the free list",
		func() int64 { _, free, _ := c.alloc.Stats(); return int64(free) })
	c.reg.GaugeFunc("jiffy_ctrl_servers", "registered memory servers",
		func() int64 { _, _, servers := c.alloc.Stats(); return int64(servers) })
	c.reg.GaugeFunc("jiffy_ctrl_membership_epoch", "cluster membership epoch (advances on register/death/drain)",
		func() int64 { return int64(c.memberEpoch.Load()) })
	c.reg.GaugeFunc("jiffy_ctrl_servers_degraded", "servers on gray-failure probation",
		func() int64 {
			c.hbMu.Lock()
			defer c.hbMu.Unlock()
			return int64(len(c.probation))
		})
	c.reg.GaugeFunc("jiffy_ctrl_blocks_tiered", "chain members currently demoted to the persist tier",
		c.tieredBlockCount)
	c.reg.GaugeFunc("jiffy_ctrl_leader", "1 when this controller is the group leader, 0 on standbys",
		func() int64 {
			if c.leading.Load() {
				return 1
			}
			return 0
		})
	c.reg.GaugeFunc("jiffy_ctrl_replication_lag_ops", "ops the slowest live standby trails the leader by",
		func() int64 { return c.repl.lag() })
	c.reg.RegisterCollector(func(w io.Writer) {
		obs.WriteHeader(w, "jiffy_ctrl_job_blocks", "blocks allocated per registered job", "gauge")
		for _, s := range c.shards {
			s.mu.Lock()
			for job, h := range s.jobs {
				var blocks int64
				h.Walk(func(n *hierarchy.Node) bool {
					blocks += int64(len(n.Map.Blocks))
					return true
				})
				obs.WriteSample(w, "jiffy_ctrl_job_blocks",
					fmt.Sprintf("{job=%q}", string(job)), blocks)
			}
			s.mu.Unlock()
		}
	})
}

// Obs exposes the controller's metric registry for the admin endpoint.
func (c *Controller) Obs() *obs.Registry { return c.reg }

// Spans exposes the bounded ring of recent controller-side RPC spans.
func (c *Controller) Spans() *obs.RingExporter { return c.spans }

// Listen starts serving control RPCs on addr and returns the bound
// address.
func (c *Controller) Listen(addr string) (string, error) {
	c.rpcSrv = rpc.NewServer(rpc.BytesHandler(c.handle), c.log)
	c.rpcSrv.SetObserver(c.rpcm, c.tracer)
	bound, err := c.rpcSrv.Listen(addr)
	if err == nil {
		c.boundAddr = bound
	}
	return bound, err
}

// Close stops the expiry worker, the RPC server, and all server
// connections.
func (c *Controller) Close() error {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.repl.stop()
	c.wg.Wait()
	if c.rpcSrv != nil {
		c.rpcSrv.Close()
	}
	c.servers.Close()
	c.ctrlPeers.Close()
	return nil
}

// shardFor hashes a job onto its shard.
func (c *Controller) shardFor(job core.JobID) *shard {
	h := fnv.New32a()
	h.Write([]byte(job))
	return c.shards[int(h.Sum32())%len(c.shards)]
}

// withJob runs fn with the job's hierarchy under its shard lock.
func (c *Controller) withJob(job core.JobID, fn func(h *hierarchy.Hierarchy) error) error {
	s := c.shardFor(job)
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.jobs[job]
	if !ok {
		return fmt.Errorf("controller: job %q: %w", job, core.ErrNotFound)
	}
	return fn(h)
}

// RegisterJob creates a job's hierarchy root.
func (c *Controller) RegisterJob(job core.JobID) error {
	if err := core.ValidateComponent(string(job)); err != nil {
		return err
	}
	s := c.shardFor(job)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.jobs[job]; exists {
		return fmt.Errorf("controller: job %q: %w", job, core.ErrExists)
	}
	now := c.clk.Now()
	s.jobs[job] = hierarchy.New(job, c.cfg.LeaseDuration, now)
	c.repl.emit(replOp{Kind: opRegisterJob, Job: job, Lease: c.cfg.LeaseDuration, Now: now})
	return nil
}

// DeregisterJob removes a job, deleting its blocks from the data plane
// and returning them to the free list.
func (c *Controller) DeregisterJob(job core.JobID) error {
	s := c.shardFor(job)
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.jobs[job]
	if !ok {
		return fmt.Errorf("controller: job %q: %w", job, core.ErrNotFound)
	}
	h.Walk(func(n *hierarchy.Node) bool {
		c.releaseBlocksLocked(n)
		return true
	})
	s.dropJobIndexLocked(h)
	delete(s.jobs, job)
	c.setTenantQuota(string(job), core.Quota{})
	c.repl.emit(replOp{Kind: opDeregisterJob, Job: job})
	return nil
}

// releaseBlocksLocked deletes a node's blocks (every replica of every
// chain) on their servers and frees them. Caller holds the shard lock.
func (c *Controller) releaseBlocksLocked(n *hierarchy.Node) {
	if len(n.Map.Blocks) == 0 {
		return
	}
	var infos []core.BlockInfo
	for _, e := range n.Map.Blocks {
		for _, info := range e.Replicas() {
			infos = append(infos, info)
			c.deleteBlockOnServer(info)
		}
	}
	c.alloc.Free(infos)
	n.Map.Blocks = nil
	n.Map.Epoch++
}

// RegisterServer records a memory server's capacity contribution.
// Registration counts as the server's first heartbeat and revives a
// server previously declared dead (its old blocks are gone; it
// contributes a fresh range).
func (c *Controller) RegisterServer(addr string, numBlocks int) (core.BlockID, error) {
	first, err := c.alloc.RegisterServer(addr, numBlocks)
	if err != nil {
		return 0, err
	}
	c.group.mu.Lock()
	c.group.contrib[addr] = contribRange{First: first, N: numBlocks}
	if next := first + core.BlockID(numBlocks); next > c.group.nextID {
		c.group.nextID = next
	}
	c.group.mu.Unlock()
	c.noteServerAlive(addr)
	c.memberEpoch.Add(1)
	c.pushTenantQuotas(addr)
	c.repl.emit(replOp{Kind: opServerRegister, Addr: addr, NumBlocks: numBlocks, FirstID: first})
	return first, nil
}

// Clock exposes the controller's time source (the simulator drives a
// virtual one).
func (c *Controller) Clock() clock.Clock { return c.clk }

// Config exposes the active configuration.
func (c *Controller) Config() core.Config { return c.cfg }
