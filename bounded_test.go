package jiffy

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"jiffy/internal/core"
)

// TestBoundedQueueBackpressure exercises the maxQueueLength semantics
// (§5.2): a queue bounded to 2 blocks rejects enqueues when full and
// accepts them again after consumers drain space.
func TestBoundedQueueBackpressure(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 1, BlocksPerServer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()

	c.RegisterJob(context.Background(), "bq")
	if _, _, err := c.CreateBoundedPrefix(context.Background(), "bq/q", nil, DSQueue, 1, 2, 0); err != nil {
		t.Fatal(err)
	}
	q, err := c.OpenQueue(context.Background(), "bq/q")
	if err != nil {
		t.Fatal(err)
	}
	item := bytes.Repeat([]byte("x"), 4*core.KB)
	// Fill until the bound bites: 2 blocks × 64KB / 4KB = ~32 items.
	accepted := 0
	var fullErr error
	for i := 0; i < 100; i++ {
		if err := q.Enqueue(context.Background(), item); err != nil {
			fullErr = err
			break
		}
		accepted++
	}
	if !errors.Is(fullErr, core.ErrBlockFull) {
		t.Fatalf("expected backpressure, got %v after %d items", fullErr, accepted)
	}
	if accepted < 16 || accepted > 40 {
		t.Errorf("accepted %d items before bound", accepted)
	}
	// Drain one segment's worth; the sealed head is reclaimed on the
	// underload signal, freeing a block slot under the bound.
	for i := 0; i < accepted/2; i++ {
		if _, err := q.Dequeue(context.Background()); err != nil {
			t.Fatalf("dequeue %d: %v", i, err)
		}
	}
	// Give the drained-segment reclamation a moment.
	deadline := time.Now().Add(5 * time.Second)
	var reErr error
	for time.Now().Before(deadline) {
		if reErr = q.Enqueue(context.Background(), item); reErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if reErr != nil {
		t.Fatalf("enqueue after drain still failing: %v", reErr)
	}
}

// TestBoundedFileStopsGrowing verifies bounds apply to files too.
func TestBoundedFileStopsGrowing(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 1, BlocksPerServer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()

	c.RegisterJob(context.Background(), "bf")
	if _, _, err := c.CreateBoundedPrefix(context.Background(), "bf/f", nil, DSFile, 1, 2, 0); err != nil {
		t.Fatal(err)
	}
	f, _ := c.OpenFile(context.Background(
	// Two 64KB chunks fit; writing past 128KB must fail.
	), "bf/f")

	if err := f.WriteAt(context.Background(), 0, make([]byte, 2*64*core.KB)); err != nil {
		t.Fatalf("write within bound: %v", err)
	}
	err = f.WriteAt(context.Background(), 2*64*core.KB, []byte("overflow"))
	if err == nil {
		t.Fatal("write beyond bound accepted")
	}
}

// TestBoundedInitialClamp: initial blocks above the bound are clamped.
func TestBoundedInitialClamp(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 1, BlocksPerServer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()
	c.RegisterJob(context.Background(), "bc")
	m, _, err := c.CreateBoundedPrefix(context.Background(), "bc/kv", nil, DSKV, 8, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Blocks) != 2 || m.MaxBlocks != 2 {
		t.Errorf("blocks=%d max=%d, want 2/2", len(m.Blocks), m.MaxBlocks)
	}
}
