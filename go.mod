module jiffy

go 1.22
