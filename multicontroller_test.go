package jiffy

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/core"
)

// TestMultiControllerCluster exercises the §4.2.1 multi-controller
// scaling path: jobs hash-partition across controllers, each
// controller owns a disjoint slice of the memory-server pool, and
// clients route per-job control operations to the owning controller
// transparently.
func TestMultiControllerCluster(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Controllers: 3, Servers: 6, BlocksPerServer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if len(cluster.Controllers) != 3 || len(cluster.ControllerAddrs) != 3 {
		t.Fatalf("controllers = %d", len(cluster.Controllers))
	}
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Many jobs, spread across the group; full data-path lifecycle on
	// each.
	const jobs = 12
	for i := 0; i < jobs; i++ {
		job := core.JobID(fmt.Sprintf("mcjob%d", i))
		if err := c.RegisterJob(context.Background(), job); err != nil {
			t.Fatalf("register %s: %v", job, err)
		}
		path := core.Path(string(job)).MustChild("kv")
		if _, _, err := c.CreatePrefix(context.Background(), path, nil, DSKV, 1, 0); err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
		kv, err := c.OpenKV(context.Background(), path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		if err := kv.Put(context.Background(), "k", []byte(string(job))); err != nil {
			t.Fatalf("put %s: %v", path, err)
		}
	}
	// Every job readable; renewals route correctly.
	var paths []core.Path
	for i := 0; i < jobs; i++ {
		job := core.JobID(fmt.Sprintf("mcjob%d", i))
		path := core.Path(string(job)).MustChild("kv")
		kv, _ := c.OpenKV(context.Background(), path)
		v, err := kv.Get(context.Background(), "k")
		if err != nil || string(v) != string(job) {
			t.Fatalf("get %s = %q, %v", path, v, err)
		}
		paths = append(paths, path)
	}
	if _, err := c.RenewLease(context.Background(), paths...); err != nil {
		t.Fatalf("cross-controller renew: %v", err)
	}

	// The group actually partitioned the jobs: no controller owns all
	// of them (12 jobs across 3 controllers).
	perCtrl := make([]int, len(cluster.Controllers))
	for i, ctrl := range cluster.Controllers {
		perCtrl[i] = ctrl.Stats().Jobs
	}
	total := 0
	for i, n := range perCtrl {
		total += n
		if n == jobs {
			t.Errorf("controller %d owns every job; partitioning broken", i)
		}
	}
	if total != jobs {
		t.Errorf("job ownership sums to %d, want %d: %v", total, jobs, perCtrl)
	}
	// Aggregated stats see the whole picture.
	stats, err := c.ControllerStats(context.Background())
	if err != nil || stats.Jobs != jobs {
		t.Errorf("aggregate stats = %+v, %v", stats, err)
	}
	if stats.Servers != 6 {
		t.Errorf("aggregate servers = %d", stats.Servers)
	}

	// Jobs route to a deterministic controller: registering a
	// duplicate job fails on the same controller.
	if err := c.RegisterJob(context.Background(), "mcjob0"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate register across group = %v", err)
	}
}

// TestMultiControllerValidation: more controllers than servers is a
// configuration error (a controller without memory servers could never
// place blocks).
func TestMultiControllerValidation(t *testing.T) {
	_, err := StartCluster(ClusterOptions{
		Config: core.TestConfig(), Controllers: 3, Servers: 2,
	})
	if err == nil {
		t.Fatal("3 controllers with 2 servers accepted")
	}
}
