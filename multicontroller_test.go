package jiffy

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/core"
)

// TestMultiControllerCluster exercises the replicated controller group
// (§4.2 control-plane fault tolerance): the first member leads, the
// standbys apply its op-log stream, and a client dialed at the group
// routes every control operation to the leader.
func TestMultiControllerCluster(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Controllers: 3, Servers: 6, BlocksPerServer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if len(cluster.Controllers) != 3 || len(cluster.ControllerAddrs) != 3 {
		t.Fatalf("controllers = %d", len(cluster.Controllers))
	}
	// Exactly one leader (the first member), and every member agrees on
	// its address and generation.
	for i, ctrl := range cluster.Controllers {
		role := ctrl.Role()
		if role.IsLeader != (i == 0) {
			t.Fatalf("controller %d IsLeader = %v", i, role.IsLeader)
		}
		if role.Leader != cluster.ControllerAddrs[0] {
			t.Fatalf("controller %d sees leader %q, want %q", i, role.Leader, cluster.ControllerAddrs[0])
		}
		if role.Gen != 1 {
			t.Fatalf("controller %d gen = %d, want 1", i, role.Gen)
		}
	}
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Many jobs, full data-path lifecycle on each.
	const jobs = 12
	for i := 0; i < jobs; i++ {
		job := core.JobID(fmt.Sprintf("mcjob%d", i))
		if err := c.RegisterJob(context.Background(), job); err != nil {
			t.Fatalf("register %s: %v", job, err)
		}
		path := core.Path(string(job)).MustChild("kv")
		if _, _, err := c.CreatePrefix(context.Background(), path, nil, DSKV, 1, 0); err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
		kv, err := c.OpenKV(context.Background(), path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		if err := kv.Put(context.Background(), "k", []byte(string(job))); err != nil {
			t.Fatalf("put %s: %v", path, err)
		}
	}
	// Every job readable; renewals route to the leader.
	var paths []core.Path
	for i := 0; i < jobs; i++ {
		job := core.JobID(fmt.Sprintf("mcjob%d", i))
		path := core.Path(string(job)).MustChild("kv")
		kv, _ := c.OpenKV(context.Background(), path)
		v, err := kv.Get(context.Background(), "k")
		if err != nil || string(v) != string(job) {
			t.Fatalf("get %s = %q, %v", path, v, err)
		}
		paths = append(paths, path)
	}
	if _, err := c.RenewLease(context.Background(), paths...); err != nil {
		t.Fatalf("renew: %v", err)
	}

	// Acks were withheld until the standbys held the ops, so every
	// member's metadata already mirrors the leader's.
	for i, ctrl := range cluster.Controllers {
		if n := ctrl.Stats().Jobs; n != jobs {
			t.Errorf("controller %d replicated %d jobs, want %d", i, n, jobs)
		}
	}
	stats, err := c.ControllerStats(context.Background())
	if err != nil || stats.Jobs != jobs {
		t.Errorf("stats = %+v, %v", stats, err)
	}
	if stats.Servers != 6 {
		t.Errorf("stats servers = %d", stats.Servers)
	}

	// The group answers with one consistent namespace: a duplicate
	// registration fails no matter which member first saw the job.
	if err := c.RegisterJob(context.Background(), "mcjob0"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate register across group = %v", err)
	}
}

// TestMultiControllerStandbyRouting: a client whose endpoint list leads
// with standbys still discovers the leader and completes control
// operations; the redirect surfaces nowhere in user code.
func TestMultiControllerStandbyRouting(t *testing.T) {
	cluster, err := StartCluster(ClusterOptions{
		Config: core.TestConfig(), Controllers: 3, Servers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Reverse the endpoint order so discovery starts at a standby.
	addrs := cluster.ControllerAddrs
	c, err := client.Dial(context.Background(),
		client.WithControllers(addrs[2], addrs[1], addrs[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.RegisterJob(context.Background(), "standby-routed"); err != nil {
		t.Fatalf("register via standby-first endpoints: %v", err)
	}
	if _, _, err := c.CreatePrefix(context.Background(), "standby-routed/kv", nil, DSKV, 1, 0); err != nil {
		t.Fatalf("create via standby-first endpoints: %v", err)
	}
	role, err := c.ControllerRole(context.Background())
	if err != nil {
		t.Fatalf("role: %v", err)
	}
	if role.Leader != addrs[0] || !role.IsLeader {
		t.Fatalf("role = %+v, want leader %q", role, addrs[0])
	}
}

// TestMultiControllerMoreControllersThanServers: standbys place no
// blocks, so a group larger than the server pool is a legal (and
// common) deployment shape.
func TestMultiControllerMoreControllersThanServers(t *testing.T) {
	cluster, err := StartCluster(ClusterOptions{
		Config: core.TestConfig(), Controllers: 3, Servers: 1,
	})
	if err != nil {
		t.Fatalf("3 controllers with 1 server rejected: %v", err)
	}
	defer cluster.Close()

	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterJob(context.Background(), "small"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreatePrefix(context.Background(), "small/q", nil, DSQueue, 1, 0); err != nil {
		t.Fatal(err)
	}
}
