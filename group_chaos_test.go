package jiffy

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/faultinject"
	"jiffy/internal/proto"
)

// TestChaosControllerKillMidRepairStandbyPromotes is the control-plane
// failover torture test: a memory server dies, the leader starts the
// chain repair, and the leader itself is killed mid-repair. The first
// standby then promotes under a fenced generation, re-sweeps the dead
// server, and finishes the repair from the replicated metadata — with
// zero metadata loss: every previously acknowledged write stays
// readable through the same client, which re-homes automatically.
func TestChaosControllerKillMidRepairStandbyPromotes(t *testing.T) {
	inj := faultinject.New(707, nil)
	inj.AddRule(faultinject.Rule{
		Name: "wire-drag", Match: "send:",
		Latency: 100 * time.Microsecond, Jitter: 300 * time.Microsecond,
	})
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Hour // survive the failover window
	cfg.RPCTimeout = 2 * time.Second
	cfg.ChainLength = 2 // every block has a surviving replica
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{
		Controllers: 3, Servers: 3, BlocksPerServer: 32,
	})
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	if err := c.RegisterJob(ctx, "ha"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreatePrefix(ctx, "ha/t", nil, DSKV, 4, 0); err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(ctx, "ha/t")
	if err != nil {
		t.Fatal(err)
	}
	const writes = 40
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := kv.Put(ctx, key, []byte(key)); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}

	// Kill a memory server, then kill the leader while it is repairing
	// the dead server's chains: the repair is cut mid-flight, and some
	// repair commits may never have reached the standbys.
	victim := cluster.Servers[0]
	vaddr := victim.Addr()
	victim.Close()
	inj.BreakConns("server-0")
	repairing := make(chan struct{})
	go func() {
		defer close(repairing)
		// The leader verifies the report by probing the server (it is
		// unreachable), declares it dead, and starts the chain sweep.
		_ = cluster.Controller.ReportFailure(proto.ReportFailureReq{
			Reporter: "chaos", Server: vaddr,
		})
	}()
	time.Sleep(2 * time.Millisecond)
	cluster.Controller.Close()
	inj.BreakConns("controller-0")
	<-repairing

	// The first standby promotes under a fresh fenced generation and
	// finishes what the dead leader started.
	standby := cluster.Controllers[1]
	if gen := standby.PromoteNow(); gen != 2 {
		t.Fatalf("promotion gen = %d, want 2", gen)
	}
	if standby.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", standby.Failovers())
	}
	// If the old leader died before replicating the death, tell the new
	// leader; its probe fails and the repair re-runs. Idempotent when
	// the promotion sweep already handled it.
	_ = standby.ReportFailure(proto.ReportFailureReq{Reporter: "chaos", Server: vaddr})

	// Zero metadata loss: the same client re-homes on its next control
	// call and every acknowledged write is still readable (reads follow
	// the repaired chains; a stale partition map refreshes via the
	// epoch-fencing retry).
	kv2, err := c.OpenKV(ctx, "ha/t")
	if err != nil {
		t.Fatalf("post-failover open: %v", err)
	}
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("k%d", i)
		v, err := kv2.Get(ctx, key)
		if err != nil || string(v) != key {
			t.Fatalf("acked write %s lost across controller failover: %q, %v", key, v, err)
		}
	}
	// The namespace survived intact and the control plane is fully
	// operational: stats, new prefixes, new writes.
	stats, err := c.ControllerStats(ctx)
	if err != nil || stats.Jobs != 1 {
		t.Fatalf("post-failover stats = %+v, %v", stats, err)
	}
	if _, _, err := c.CreatePrefix(ctx, "ha/after", nil, DSQueue, 1, 0); err != nil {
		t.Fatalf("post-failover create: %v", err)
	}
	q, err := c.OpenQueue(ctx, "ha/after")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(ctx, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	// No chain still references the dead server.
	lp, err := standby.ListPrefixes("ha")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lp.Prefixes {
		if strings.Contains(fmt.Sprintf("%v", p), vaddr) {
			t.Fatalf("prefix %v still references dead server %s", p, vaddr)
		}
	}
}
