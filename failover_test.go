package jiffy

import (
	"context"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/controller"
	"jiffy/internal/core"
)

// TestControllerFailover exercises the checkpoint-based control-plane
// recovery path: a controller checkpoints its metadata, dies, and a
// replacement restores the checkpoint and serves the same jobs — whose
// data never left the (still running) memory servers.
func TestControllerFailover(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Hour // survive the failover window
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	c, _ := cluster.Connect(context.Background())
	c.RegisterJob(context.Background(), "ha")
	if _, _, err := c.CreatePrefix(context.Background(), "ha/t", nil, DSKV, 2, 0); err != nil {
		t.Fatal(err)
	}
	kv, _ := c.OpenKV(context.Background(), "ha/t")
	for i := 0; i < 20; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SaveControllerState(context.Background(), "ckpt/ha"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// The controller dies; the memory servers stay up.
	cluster.Controller.Close()

	// A replacement controller restores the image and starts serving
	// on a new endpoint.
	ctrl2, err := controller.New(controller.Options{
		Config: cfg, Persist: cluster.Store, DisableExpiry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl2.Close()
	if err := ctrl2.RestoreState("ckpt/ha"); err != nil {
		t.Fatal(err)
	}
	addr2, err := ctrl2.Listen("mem://failover-ctrl2")
	if err != nil {
		t.Fatal(err)
	}

	c2, err := client.Connect(context.Background(), addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Reads hit the same live blocks through the restored metadata.
	kv2, err := c2.OpenKV(context.Background(), "ha/t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		v, err := kv2.Get(context.Background(), fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("post-failover get k%d = %q, %v", i, v, err)
		}
	}
	// Writes, scaling and new prefixes keep working.
	if err := kv2.Put(context.Background(), "post-failover", []byte("write")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c2.CreatePrefix(context.Background(), "ha/t2", nil, DSQueue, 1, 0); err != nil {
		t.Fatal(err)
	}
	q, _ := c2.OpenQueue(context.Background(), "ha/t2")
	if err := q.Enqueue(context.Background(), []byte("alive")); err != nil {
		t.Fatal(err)
	}
	stats, _ := c2.ControllerStats(context.Background())
	if stats.Jobs != 1 || stats.AllocatedBlocks < 3 {
		t.Errorf("restored stats = %+v", stats)
	}
}
