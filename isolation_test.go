package jiffy

import (
	"context"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/core"
)

// TestTaskLevelIsolation verifies the §3.1 isolation property: one
// address prefix's lifecycle (expiry and reclamation) does not disturb
// sibling prefixes of the same job — arrival and departure of tasks
// leave other tasks' resources untouched.
func TestTaskLevelIsolation(t *testing.T) {
	cfg := core.TestConfig() // 200ms leases, 20ms scans
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()

	c.RegisterJob(context.Background(
	// Two sibling tasks; only taskA is renewed.
	), "iso")

	if _, _, err := c.CreatePrefix(context.Background(), "iso/taskA", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreatePrefix(context.Background(), "iso/taskB", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	renewer := c.StartRenewer(50*time.Millisecond, "iso/taskA")
	defer renewer.Stop()

	kvA, _ := c.OpenKV(context.Background(), "iso/taskA")
	kvB, _ := c.OpenKV(context.Background(), "iso/taskB")
	kvA.Put(context.Background(), "a", []byte("alive"))
	kvB.Put(context.Background(), "b", []byte("doomed"))

	// taskB's lease lapses; its memory is reclaimed.
	deadline := time.Now().Add(5 * time.Second)
	for cluster.Controller.ExpiryCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if cluster.Controller.ExpiryCount() != 1 {
		t.Fatalf("expiries = %d, want exactly taskB", cluster.Controller.ExpiryCount())
	}
	// taskA's handle keeps working without a single hiccup — no
	// refresh, no reload.
	for i := 0; i < 20; i++ {
		if v, err := kvA.Get(context.Background(), "a"); err != nil || string(v) != "alive" {
			t.Fatalf("sibling expiry disturbed taskA: %q, %v", v, err)
		}
	}
	// taskB's data is recoverable (flushed before reclaim), proving
	// the reclaim was the lease's doing, not data loss.
	kvB2, err := c.OpenKV(context.Background(), "iso/taskB")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := kvB2.Get(context.Background(), "b"); err != nil || string(v) != "doomed" {
		t.Errorf("taskB flush/reload = %q, %v", v, err)
	}
}

// TestStageLevelIsolation demonstrates §3.1's "coarser-grained
// isolation by removing a layer": tasks share one stage-level prefix,
// so a single renewal covers the whole stage and the stage lives and
// dies as a unit.
func TestStageLevelIsolation(t *testing.T) {
	cfg := core.TestConfig()
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()

	c.RegisterJob(context.Background(
	// One shared prefix for the whole map stage (instead of one per
	// task): the hierarchy layer that would separate tasks is omitted.
	), "stagejob")

	if _, _, err := c.CreatePrefix(context.Background(), "stagejob/map-stage", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	renewer := c.StartRenewer(50*time.Millisecond, "stagejob/map-stage")

	// Many "tasks" write under the single stage prefix.
	kv, _ := c.OpenKV(context.Background(), "stagejob/map-stage")
	for task := 0; task < 8; task++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("task-%d", task), []byte("output")); err != nil {
			t.Fatal(err)
		}
	}
	// One renewal message covers all eight tasks' data.
	time.Sleep(500 * time.Millisecond) // several lease periods
	if n := cluster.Controller.ExpiryCount(); n != 0 {
		t.Fatalf("stage expired despite renewal: %d", n)
	}
	// Stop renewing: the whole stage is reclaimed as one unit.
	renewer.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for cluster.Controller.ExpiryCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if cluster.Controller.ExpiryCount() != 1 {
		t.Errorf("stage reclaim count = %d, want 1", cluster.Controller.ExpiryCount())
	}
}

// TestFinerGrainedIsolation demonstrates §3.1's "finer isolation by
// adding a layer": per-table prefixes under a task, individually
// renewable and reclaimable.
func TestFinerGrainedIsolation(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 1, BlocksPerServer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()

	c.RegisterJob(context.Background(), "lake")
	if _, _, err := c.CreatePrefix(context.Background(), "lake/etl", nil, DSNone, 0, 0); err != nil {
		t.Fatal(err)
	}
	// An extra layer: per-table structures under the task.
	for _, table := range []string{"orders", "customers"} {
		p := core.MustPath("lake", "etl", table)
		if _, _, err := c.CreatePrefix(context.Background(), p, nil, DSKV, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Reclaiming one table's prefix leaves the other untouched.
	if err := c.RemovePrefix(context.Background(), "lake/etl/orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenKV(context.Background(), "lake/etl/customers"); err != nil {
		t.Errorf("sibling table disturbed: %v", err)
	}
	stats, _ := c.ControllerStats(context.Background())
	if stats.AllocatedBlocks != 1 {
		t.Errorf("allocated = %d, want 1", stats.AllocatedBlocks)
	}
}
