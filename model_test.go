package jiffy

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"jiffy/internal/core"
)

// TestKVModelEquivalenceEndToEnd drives the full stack (client →
// controller → servers, with splits and merges happening underneath)
// with a random operation sequence and checks it stays equivalent to a
// plain map — the repo's strongest end-to-end correctness property.
func TestKVModelEquivalenceEndToEnd(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()
	c.RegisterJob(context.Background(), "model")
	if _, _, err := c.CreatePrefix(context.Background(), "model/kv", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(context.Background(), "model/kv")
	if err != nil {
		t.Fatal(err)
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := map[string][]byte{}
		// Values large enough that splits occur during the run.
		for op := 0; op < 400; op++ {
			key := fmt.Sprintf("s%d-k%d", seed, rng.Intn(64))
			switch rng.Intn(5) {
			case 0, 1: // put
				val := make([]byte, 256+rng.Intn(512))
				rng.Read(val)
				if err := kv.Put(context.Background(), key, val); err != nil {
					t.Logf("put: %v", err)
					return false
				}
				model[key] = val
			case 2: // get
				got, err := kv.Get(context.Background(), key)
				want, ok := model[key]
				if ok != (err == nil) {
					t.Logf("get presence mismatch for %q: %v", key, err)
					return false
				}
				if ok && !bytes.Equal(got, want) {
					t.Logf("get value mismatch for %q", key)
					return false
				}
			case 3: // delete
				_, err := kv.Delete(context.Background(), key)
				_, ok := model[key]
				if ok != (err == nil) {
					t.Logf("delete presence mismatch for %q: %v", key, err)
					return false
				}
				delete(model, key)
			case 4: // exists
				has, err := kv.Exists(context.Background(), key)
				if err != nil {
					t.Logf("exists: %v", err)
					return false
				}
				_, ok := model[key]
				if has != ok {
					t.Logf("exists mismatch for %q", key)
					return false
				}
			}
		}
		// Sweep: every model key readable with the right value.
		for key, want := range model {
			got, err := kv.Get(context.Background(), key)
			if err != nil || !bytes.Equal(got, want) {
				t.Logf("final sweep mismatch for %q: %v", key, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
	// The store did elastically scale during the run.
	stats, _ := c.ControllerStats(context.Background())
	if stats.AllocatedBlocks < 2 {
		t.Errorf("expected splits during model run; allocated = %d", stats.AllocatedBlocks)
	}
}

// TestQueueModelEquivalenceEndToEnd: random interleavings of enqueue
// and dequeue preserve exact FIFO order through segment scaling and
// reclamation.
func TestQueueModelEquivalenceEndToEnd(t *testing.T) {
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()
	c.RegisterJob(context.Background(), "model")

	f := func(seed int64) bool {
		path := core.Path(fmt.Sprintf("model/q%d", seed&0xffff))
		if _, _, err := c.CreatePrefix(context.Background(), path, nil, DSQueue, 1, 0); err != nil {
			t.Logf("create: %v", err)
			return false
		}
		defer c.RemovePrefix(context.Background(), path)
		q, err := c.OpenQueue(context.Background(), path)
		if err != nil {
			t.Logf("open: %v", err)
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		var modelQ [][]byte
		next := 0
		for op := 0; op < 500; op++ {
			if rng.Intn(3) != 0 { // bias toward enqueue
				item := make([]byte, 128+rng.Intn(512))
				rng.Read(item)
				if err := q.Enqueue(context.Background(), item); err != nil {
					t.Logf("enqueue: %v", err)
					return false
				}
				modelQ = append(modelQ, item)
			} else {
				got, err := q.Dequeue(context.Background())
				if len(modelQ) == next {
					if !errors.Is(err, core.ErrEmpty) {
						t.Logf("dequeue on empty = %v", err)
						return false
					}
					continue
				}
				if err != nil || !bytes.Equal(got, modelQ[next]) {
					t.Logf("dequeue order mismatch at %d: %v", next, err)
					return false
				}
				next++
			}
		}
		// Drain the rest.
		for ; next < len(modelQ); next++ {
			got, err := q.Dequeue(context.Background())
			if err != nil || !bytes.Equal(got, modelQ[next]) {
				t.Logf("drain mismatch at %d: %v", next, err)
				return false
			}
		}
		_, err = q.Dequeue(context.Background())
		return errors.Is(err, core.ErrEmpty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}
