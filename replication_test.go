package jiffy

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/proto"
)

// replicatedCluster boots a cluster with chain length 2 across three
// servers.
func replicatedCluster(t *testing.T) (*Cluster, *Client) {
	t.Helper()
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.ChainLength = 2
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 3, BlocksPerServer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return cluster, c
}

func TestReplicatedKVEndToEnd(t *testing.T) {
	cluster, c := replicatedCluster(t)
	c.RegisterJob(context.Background(), "rj")
	m, _, err := c.CreatePrefix(context.Background(), "rj/t", nil, DSKV, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The map records a two-member chain with the head as Info.
	if len(m.Blocks) != 1 || len(m.Blocks[0].Chain) != 2 {
		t.Fatalf("chain = %+v", m.Blocks[0].Chain)
	}
	if m.Blocks[0].Chain[0] != m.Blocks[0].Info {
		t.Error("Info is not the chain head")
	}
	kv, err := c.OpenKV(context.Background(), "rj/t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Reads are served by the tail — and must see every write (chain
	// propagation is synchronous).
	for i := 0; i < 50; i++ {
		v, err := kv.Get(context.Background(), fmt.Sprintf("k%d", i))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get k%d from tail = %q, %v", i, v, err)
		}
	}
	// Both replicas physically hold the data.
	counts := replicaLens(cluster, m.Blocks[0].Chain)
	if counts[0] != 50 || counts[1] != 50 {
		t.Errorf("replica entry counts = %v, want [50 50]", counts)
	}
}

// replicaLens finds each chain member's pair count across the
// cluster's blockstores.
func replicaLens(cluster *Cluster, chain core.ReplicaChain) []int {
	out := make([]int, len(chain))
	for i, member := range chain {
		for _, srv := range cluster.Servers {
			for _, b := range srv.Store().List() {
				if b.ID == member.ID {
					if res, err := b.Partition.Apply(core.OpUsage, nil); err == nil {
						_ = res
					}
					out[i] = partitionLen(b.Partition)
				}
			}
		}
	}
	return out
}

func partitionLen(p interface{ Bytes() int }) int {
	type lener interface{ Len() int }
	if l, ok := p.(lener); ok {
		return l.Len()
	}
	return -1
}

// TestReplicatedKVSplitResync fills a replicated KV store past one
// block so the controller must split — slot moves bypass op-level
// replication, so this exercises the snapshot resync path.
func TestReplicatedKVSplitResync(t *testing.T) {
	_, c := replicatedCluster(t)
	c.RegisterJob(context.Background(), "rj")
	if _, _, err := c.CreatePrefix(context.Background(), "rj/t", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	kv, _ := c.OpenKV(context.Background(), "rj/t")
	val := bytes.Repeat([]byte("r"), 1024)
	const n = 200 // ~200KB against 64KB blocks: several splits
	for i := 0; i < n; i++ {
		if err := kv.Put(context.Background(), fmt.Sprintf("key-%03d", i), val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, err := kv.Get(context.Background(), fmt.Sprintf("key-%03d", i))
		if err != nil || !bytes.Equal(v, val) {
			t.Fatalf("get %d after splits: %v", i, err)
		}
	}
}

func TestReplicatedQueueAndFile(t *testing.T) {
	_, c := replicatedCluster(t)
	c.RegisterJob(context.Background(

	// Queue across replicated segments.
	), "rj")

	if _, _, err := c.CreatePrefix(context.Background(), "rj/q", nil, DSQueue, 1, 0); err != nil {
		t.Fatal(err)
	}
	q, _ := c.OpenQueue(context.Background(), "rj/q")
	item := bytes.Repeat([]byte("q"), 1024)
	for i := 0; i < 100; i++ {
		if err := q.Enqueue(context.Background(), append([]byte(fmt.Sprintf("%03d:", i)), item...)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := q.Dequeue(context.Background())
		if err != nil || string(got[:4]) != fmt.Sprintf("%03d:", i) {
			t.Fatalf("dequeue %d = %q, %v", i, got[:4], err)
		}
	}

	// File across replicated chunks; reads come from the tails.
	if _, _, err := c.CreatePrefix(context.Background(), "rj/f", nil, DSFile, 1, 0); err != nil {
		t.Fatal(err)
	}
	f, _ := c.OpenFile(context.Background(), "rj/f")
	payload := bytes.Repeat([]byte("f"), 150*1024) // spans ~3 chunks
	if err := f.WriteAt(context.Background(), 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAt(context.Background(), 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("file read back %d bytes, %v", len(got), err)
	}
}

// TestReplicatedFlushLoad verifies the checkpoint path uses the chain
// tail and restores full chains.
func TestReplicatedFlushLoad(t *testing.T) {
	_, c := replicatedCluster(t)
	c.RegisterJob(context.Background(), "rj")
	c.CreatePrefix(context.Background(), "rj/t", nil, DSKV, 1, 0)
	kv, _ := c.OpenKV(context.Background(), "rj/t")
	kv.Put(context.Background(), "persist", []byte("me"))
	if _, err := c.FlushPrefix(context.Background(), "rj/t", "ckpt/repl"); err != nil {
		t.Fatal(err)
	}
	kv.Put(context.Background(), "persist", []byte("dirty"))
	if err := c.LoadPrefix(context.Background(), "rj/t", "ckpt/repl"); err != nil {
		t.Fatal(err)
	}
	kv2, _ := c.OpenKV(context.Background(), "rj/t")
	v, err := kv2.Get(context.Background(), "persist")
	if err != nil || string(v) != "me" {
		t.Fatalf("restored = %q, %v", v, err)
	}
}

// TestChainSpreadAcrossServers checks the allocator's least-loaded
// placement puts chain members on distinct servers when possible.
func TestChainSpreadAcrossServers(t *testing.T) {
	_, c := replicatedCluster(t)
	c.RegisterJob(context.Background(), "rj")
	m, _, err := c.CreatePrefix(context.Background(), "rj/t", nil, DSKV, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Blocks {
		if len(e.Chain) != 2 {
			t.Fatalf("chain length = %d", len(e.Chain))
		}
		if e.Chain[0].Server == e.Chain[1].Server {
			t.Errorf("chain members co-located on %s", e.Chain[0].Server)
		}
	}
}

// TestReplicaSignalsAreHarmless: replicas crossing thresholds send
// scale signals with replica block IDs the controller does not know as
// heads; those must be ignored without error.
func TestReplicaSignalsAreHarmless(t *testing.T) {
	cluster, c := replicatedCluster(t)
	c.RegisterJob(context.Background(), "rj")
	m, _, _ := c.CreatePrefix(context.Background(), "rj/t", nil, DSKV, 1, 0)
	replica := m.Blocks[0].Chain[1]
	resp, err := cluster.Controller.ScaleUp(proto.ScaleUpReq{Path: "rj/t", Block: replica.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Map.Blocks) != 1 {
		t.Errorf("replica signal scaled the structure: %d blocks", len(resp.Map.Blocks))
	}
}
