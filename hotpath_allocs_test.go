package jiffy_test

// Allocation gates for the single-op hot path. Client and servers
// share the process over mem://, so the measured count covers the
// whole round trip: request encode, wire framing, server dispatch,
// response decode. The ceilings pin the pooled fast path — inline
// frames, recycled waiters, borrowed response buffers — so a stray
// per-call allocation (a lost pooled buffer, a regrown channel, an
// escaping frame struct) fails the test rather than quietly eroding
// the single-digit-microsecond budget.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"jiffy"
	"jiffy/internal/core"
)

func allocCluster(t *testing.T) *jiffy.Client {
	t.Helper()
	cfg := core.TestConfig()
	cfg.BlockSize = core.MB
	cfg.LeaseDuration = time.Hour
	cluster, err := jiffy.StartCluster(jiffy.ClusterOptions{
		Config: cfg, Servers: 1, BlocksPerServer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	c, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestKVPutSingleAllocs pins the put round trip. Keys are pre-written
// so the measured puts are steady-state overwrites, not hash-map
// growth.
func TestKVPutSingleAllocs(t *testing.T) {
	c := allocCluster(t)
	c.RegisterJob(context.Background(), "allocs")
	if _, _, err := c.CreatePrefix(context.Background(), "allocs/kv", nil, jiffy.DSKV, 4, 0); err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(context.Background(), "allocs/kv")
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 64)
	val := make([]byte, 128)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		if err := kv.Put(context.Background(), keys[i], val); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		if err := kv.Put(context.Background(), keys[i%len(keys)], val); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 6 {
		t.Fatalf("KV put single-op allocates %.1f objects/op, want <= 6", allocs)
	}
}

// TestKVGetSingleAllocs pins the get round trip, including the
// borrowed-response copy-out (one exact-size value allocation).
func TestKVGetSingleAllocs(t *testing.T) {
	c := allocCluster(t)
	c.RegisterJob(context.Background(), "allocs")
	if _, _, err := c.CreatePrefix(context.Background(), "allocs/kv", nil, jiffy.DSKV, 4, 0); err != nil {
		t.Fatal(err)
	}
	kv, err := c.OpenKV(context.Background(), "allocs/kv")
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 64)
	val := make([]byte, 128)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		if err := kv.Put(context.Background(), keys[i], val); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(300, func() {
		v, err := kv.Get(context.Background(), keys[i%len(keys)])
		if err != nil || len(v) != len(val) {
			t.Fatalf("get: %d bytes, %v", len(v), err)
		}
		i++
	})
	if allocs > 8 {
		t.Fatalf("KV get single-op allocates %.1f objects/op, want <= 8", allocs)
	}
}

// TestQueueEnqueueSingleAllocs pins the enqueue round trip. Segment
// growth amortizes across ops, so the ceiling carries a small margin
// over the steady-state count.
func TestQueueEnqueueSingleAllocs(t *testing.T) {
	c := allocCluster(t)
	c.RegisterJob(context.Background(), "allocs")
	if _, _, err := c.CreatePrefix(context.Background(), "allocs/q", nil, jiffy.DSQueue, 1, 0); err != nil {
		t.Fatal(err)
	}
	q, err := c.OpenQueue(context.Background(), "allocs/q")
	if err != nil {
		t.Fatal(err)
	}
	item := make([]byte, 64)
	allocs := testing.AllocsPerRun(300, func() {
		if err := q.Enqueue(context.Background(), item); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 5 {
		t.Fatalf("queue enqueue single-op allocates %.1f objects/op, want <= 5", allocs)
	}
}
