package jiffy

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"jiffy/internal/core"
	"jiffy/internal/ds"
)

// counterPartition is a demonstration custom data structure: a set of
// named monotonic counters. It implements ds.Partition — the same
// internal block API the built-ins use (Fig. 6 of the paper) — and is
// registered once per process via ds.Register.
type counterPartition struct {
	mu       sync.Mutex
	counters map[string]int64
	bytes    int
	cap      int
}

const dsCounter = ds.CustomBase + 1

func newCounterPartition(capacity, _ int) ds.Partition {
	return &counterPartition{counters: make(map[string]int64), cap: capacity}
}

func (p *counterPartition) Type() core.DSType { return dsCounter }
func (p *counterPartition) Capacity() int     { return p.cap }

func (p *counterPartition) Bytes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytes
}

// Apply: OpUpdate(name, delta8) adds delta and returns the new value;
// OpGet(name) reads; OpDelete(name) removes.
func (p *counterPartition) Apply(op core.OpType, args [][]byte) ([][]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch op {
	case core.OpUpdate:
		if len(args) != 2 || len(args[1]) != 8 {
			return nil, fmt.Errorf("counter: update wants (name, delta8)")
		}
		name := string(args[0])
		if _, exists := p.counters[name]; !exists {
			if p.bytes+len(name)+8 > p.cap {
				return nil, core.ErrBlockFull
			}
			p.bytes += len(name) + 8
		}
		p.counters[name] += int64(binary.BigEndian.Uint64(args[1]))
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, uint64(p.counters[name]))
		return [][]byte{out}, nil
	case core.OpGet:
		if len(args) != 1 {
			return nil, fmt.Errorf("counter: get wants (name)")
		}
		v, ok := p.counters[string(args[0])]
		if !ok {
			return nil, core.ErrNotFound
		}
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, uint64(v))
		return [][]byte{out}, nil
	case core.OpDelete:
		name := string(args[0])
		if _, ok := p.counters[name]; !ok {
			return nil, core.ErrNotFound
		}
		delete(p.counters, name)
		p.bytes -= len(name) + 8
		return nil, nil
	default:
		return nil, fmt.Errorf("counter: %w (%v)", core.ErrWrongType, op)
	}
}

func (p *counterPartition) Snapshot() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p.counters); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (p *counterPartition) Restore(snapshot []byte) error {
	counters := make(map[string]int64)
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&counters); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counters = counters
	p.bytes = 0
	for name := range counters {
		p.bytes += len(name) + 8
	}
	return nil
}

var registerCounterOnce sync.Once

func registerCounter(t *testing.T) {
	registerCounterOnce.Do(func() {
		if err := ds.Register(dsCounter, "counter", newCounterPartition); err != nil {
			t.Fatal(err)
		}
	})
}

func delta(d int64) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(d))
	return out
}

// TestCustomDataStructureEndToEnd registers the counter structure and
// drives it through the full stack: controller provisioning, server
// instantiation via the registry, client raw handle, notifications,
// flush/load, and lease expiry.
func TestCustomDataStructureEndToEnd(t *testing.T) {
	registerCounter(t)
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cluster, err := StartCluster(ClusterOptions{
		Config: cfg, Servers: 2, BlocksPerServer: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c, _ := cluster.Connect(context.Background())
	defer c.Close()

	c.RegisterJob(context.Background(), "cj")
	if _, _, err := c.CreatePrefix(context.Background(), "cj/hits", nil, dsCounter, 1, 0); err != nil {
		t.Fatal(err)
	}
	h, err := c.OpenCustom(context.Background(), "cj/hits", dsCounter)
	if err != nil {
		t.Fatal(err)
	}
	// Increment from several goroutines; counters are atomic per block.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := h.Exec(context.Background(), 0, core.OpUpdate, []byte("requests"), delta(1)); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	res, err := h.Exec(context.Background(), 0, core.OpGet, []byte("requests"))
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.BigEndian.Uint64(res[0])); got != 100 {
		t.Errorf("counter = %d, want 100", got)
	}

	// Checkpoint and restore through the generic snapshot machinery.
	if _, err := c.FlushPrefix(context.Background(), "cj/hits", "ckpt/counters"); err != nil {
		t.Fatal(err)
	}
	h.Exec(context.Background(), 0, core.OpUpdate, []byte("requests"), delta(999))
	if err := c.LoadPrefix(context.Background(), "cj/hits", "ckpt/counters"); err != nil {
		t.Fatal(err)
	}
	h2, _ := c.OpenCustom(context.Background(), "cj/hits", dsCounter)
	res, err = h2.Exec(context.Background(), 0, core.OpGet, []byte("requests"))
	if err != nil || int64(binary.BigEndian.Uint64(res[0])) != 100 {
		t.Errorf("restored counter = %v, %v", res, err)
	}

	// Growth appends chunk-indexed blocks.
	if err := h2.Grow(context.Background()); err != nil {
		t.Fatal(err)
	}
	n, _ := h2.Blocks(context.Background())
	if n != 2 {
		t.Errorf("blocks after grow = %d", n)
	}
	if _, err := h2.Exec(context.Background(), 1, core.OpUpdate, []byte("other"), delta(5)); err != nil {
		t.Errorf("op on grown chunk: %v", err)
	}

	// Wrong type code is rejected at open.
	if _, err := c.OpenCustom(context.Background(), "cj/hits", dsCounter+1); !errors.Is(err, core.ErrWrongType) {
		t.Errorf("open with wrong code = %v", err)
	}
}

func TestCustomRegistryValidation(t *testing.T) {
	registerCounter(t)
	// Reserved codes rejected.
	if err := ds.Register(core.DSKV, "bad", newCounterPartition); err == nil {
		t.Error("built-in code accepted")
	}
	// Duplicates rejected.
	if err := ds.Register(dsCounter, "counter2", newCounterPartition); !errors.Is(err, core.ErrExists) {
		t.Errorf("duplicate code = %v", err)
	}
	if err := ds.Register(dsCounter+7, "counter", newCounterPartition); !errors.Is(err, core.ErrExists) {
		t.Errorf("duplicate name = %v", err)
	}
	// Lookups.
	if tc, ok := ds.CustomTypeByName("counter"); !ok || tc != dsCounter {
		t.Errorf("CustomTypeByName = %v, %v", tc, ok)
	}
	if name, ok := ds.CustomName(dsCounter); !ok || name != "counter" {
		t.Errorf("CustomName = %q, %v", name, ok)
	}
	if ds.IsCustom(core.DSFile) {
		t.Error("built-in reported as custom")
	}
	// Unregistered type creation fails everywhere.
	if _, err := ds.NewCustom(ds.CustomBase+40, 1024, 64); err == nil {
		t.Error("unregistered custom type created")
	}
}
