package jiffy

// Gray-failure chaos suite: a server that is alive but persistently
// slow (fail-slow) must not be treated as healthy (unbounded tail
// latency) nor as dead (spurious chain splices). These scenarios drive
// the full gray-failure machinery end to end under the deterministic
// injector: hedged reads bound the client's read tail, the per-server
// circuit breaker steers traffic off the slow replica, and the
// server→controller fail-slow reports place it on probation without a
// membership change. Seeds are fixed; failures reproduce exactly.

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"jiffy/internal/client"
	"jiffy/internal/core"
	"jiffy/internal/faultinject"
)

// grayTailLatency is the injected one-way latency toward the slow
// server: far above any healthy in-process RTT, far below the RPC
// timeout, so ops succeed but slowly — the definition of gray.
const grayTailLatency = 25 * time.Millisecond

// durQuantile returns the q-quantile of ds (sorts a copy).
func durQuantile(ds []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(float64(len(s)-1)*q)]
}

// metricValue extracts the first sample of name from a Prometheus
// dump, -1 when absent.
func metricValue(dump, name string) float64 {
	for _, line := range strings.Split(dump, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		fields := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err == nil {
			return v
		}
	}
	return -1
}

// grayCluster boots a 3-server cluster with 3-way chains behind the
// injector and returns it with a prefix whose single chain spans all
// three servers, plus that chain's tail address.
func grayCluster(t *testing.T, inj *faultinject.Injector, cfg core.Config) (*Cluster, string) {
	t.Helper()
	cluster := chaosCluster(t, inj, cfg, ClusterOptions{Servers: 3, BlocksPerServer: 16})
	seed, err := cluster.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	ctx := context.Background()
	if err := seed.RegisterJob(ctx, "gray"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := seed.CreatePrefix(ctx, "gray/kv", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	open, err := cluster.Controller.Open("gray/kv")
	if err != nil {
		t.Fatal(err)
	}
	chain := open.Map.Blocks[0].Chain
	if len(chain) != cfg.ChainLength {
		t.Fatalf("chain = %v, want length %d", chain, cfg.ChainLength)
	}
	return cluster, chain[len(chain)-1].Server
}

// TestChaosGrayFailureHedgedTailLatency is the tentpole latency bound:
// with the chain tail fail-slow, an unhedged client's read p99 blows
// up by the full injected delay while a hedged client's p99 stays
// within a small multiple of the healthy baseline — the backup request
// to a healthy chain member wins almost immediately. Meanwhile every
// write acked through the slow chain remains readable: hedging never
// touches mutations, so gray failure costs write latency, not data.
func TestChaosGrayFailureHedgedTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos scenario")
	}
	inj := faultinject.New(1301, nil)
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.ChainLength = 3
	cfg.RPCTimeout = 2 * time.Second
	cluster, tail := grayCluster(t, inj, cfg)
	ctx := context.Background()

	plain, err := cluster.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	hedged, err := cluster.Connect(ctx, client.WithHedgedReads(client.HedgePolicy{
		Multiplier: 3, MinDelay: 500 * time.Microsecond, MinSamples: 8,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer hedged.Close()

	kvPlain, err := plain.OpenKV(ctx, "gray/kv")
	if err != nil {
		t.Fatal(err)
	}
	kvHedged, err := hedged.OpenKV(ctx, "gray/kv")
	if err != nil {
		t.Fatal(err)
	}

	const keys = 48
	for i := 0; i < keys; i++ {
		if err := kvPlain.Put(ctx, fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatalf("healthy put %d: %v", i, err)
		}
	}

	// Healthy warm-up: establishes the hedged client's latency samples
	// (so its p95 trigger is armed) and the healthy read baseline.
	var healthy []time.Duration
	for i := 0; i < 96; i++ {
		key := fmt.Sprintf("k%02d", i%keys)
		start := time.Now()
		if _, err := kvPlain.Get(ctx, key); err != nil {
			t.Fatalf("healthy get: %v", err)
		}
		healthy = append(healthy, time.Since(start))
		if _, err := kvHedged.Get(ctx, key); err != nil {
			t.Fatalf("healthy hedged get: %v", err)
		}
	}
	base := durQuantile(healthy, 0.99)
	if base < 2*time.Millisecond {
		base = 2 * time.Millisecond // floor: sub-ms baselines make the ratio meaningless
	}
	for _, s := range hedged.ServerHealth() {
		t.Logf("warmup health: %+v (tail=%s)", s, tail)
	}

	// The tail turns gray: every byte toward it is delayed, every
	// session stays up, every op still succeeds.
	inj.AddRule(faultinject.Rule{Name: "slow-tail", Match: "send:" + tail, Latency: grayTailLatency})

	var unhedged []time.Duration
	for i := 0; i < 40; i++ {
		start := time.Now()
		if _, err := kvPlain.Get(ctx, fmt.Sprintf("k%02d", i%keys)); err != nil {
			t.Fatalf("unhedged gray get: %v", err)
		}
		unhedged = append(unhedged, time.Since(start))
	}
	var hedgedLat []time.Duration
	for i := 0; i < 120; i++ {
		start := time.Now()
		v, err := kvHedged.Get(ctx, fmt.Sprintf("k%02d", i%keys))
		if err != nil {
			t.Fatalf("hedged gray get: %v", err)
		}
		if want := fmt.Sprintf("v%02d", i%keys); string(v) != want {
			t.Fatalf("hedged get returned %q, want %q", v, want)
		}
		hedgedLat = append(hedgedLat, time.Since(start))
	}

	unhedgedP99 := durQuantile(unhedged, 0.99)
	hedgedP99 := durQuantile(hedgedLat, 0.99)
	{
		s := append([]time.Duration(nil), hedgedLat...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		t.Logf("hedged slowest: %v", s[len(s)-8:])
	}
	t.Logf("healthy p99 (floored) = %v, unhedged gray p99 = %v, hedged gray p99 = %v",
		base, unhedgedP99, hedgedP99)
	if unhedgedP99 <= 10*base {
		t.Errorf("unhedged p99 %v not >10x baseline %v: the tail is not actually slow", unhedgedP99, base)
	}
	if hedgedP99 > 3*base {
		t.Errorf("hedged p99 %v exceeds 3x baseline %v", hedgedP99, base)
	}

	// Writes during the gray phase pay the chain's latency but must all
	// ack — and every acked write must read back intact: zero loss.
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("gray-w%02d", i)
		if err := kvPlain.Put(ctx, key, []byte(key)); err != nil {
			t.Fatalf("gray-phase put %s: %v", key, err)
		}
	}
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("gray-w%02d", i)
		v, err := kvHedged.Get(ctx, key)
		if err != nil || string(v) != key {
			t.Fatalf("acked gray-phase write %s lost: %q, %v", key, v, err)
		}
	}

	// The hedge counters prove the mechanism fired and won.
	var buf bytes.Buffer
	hedged.Obs().WritePrometheus(&buf)
	dump := buf.String()
	fired := metricValue(dump, "jiffy_client_hedges_fired_total")
	won := metricValue(dump, "jiffy_client_hedges_won_total")
	if fired <= 0 {
		t.Error("no hedges fired during the gray phase")
	}
	if won <= 0 {
		t.Error("no hedge ever won against the slow tail")
	}
	t.Logf("hedges fired=%v won=%v canceled=%v", fired, won,
		metricValue(dump, "jiffy_client_hedges_canceled_total"))
}

// TestChaosGrayFailureBreaker drives the per-server circuit breaker
// through its full deterministic cycle: closed while healthy; slow
// successes (latency-ceiling strikes) open it after exactly the
// configured streak; while open, reads fail over along the chain and
// still succeed; after the cooldown a half-open probe against the
// healed server closes it again.
func TestChaosGrayFailureBreaker(t *testing.T) {
	inj := faultinject.New(1302, nil)
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.ChainLength = 3
	cfg.RPCTimeout = 2 * time.Second
	cluster, tail := grayCluster(t, inj, cfg)
	ctx := context.Background()

	const cooldown = 100 * time.Millisecond
	c, err := cluster.Connect(ctx, client.WithBreaker(client.BreakerPolicy{
		Failures: 3, LatencyCeiling: 5 * time.Millisecond, Cooldown: cooldown,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	kv, err := c.OpenKV(ctx, "gray/kv")
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(ctx, "bk", []byte("bv")); err != nil {
		t.Fatal(err)
	}

	stateOf := func(server string) (string, int) {
		for _, s := range c.ServerHealth() {
			if s.Server == server {
				return s.State, s.Strikes
			}
		}
		return "", 0
	}

	// Healthy reads leave the breaker closed.
	for i := 0; i < 4; i++ {
		if _, err := kv.Get(ctx, "bk"); err != nil {
			t.Fatalf("healthy get: %v", err)
		}
	}
	if state, _ := stateOf(tail); state != "closed" {
		t.Fatalf("healthy breaker state = %q, want closed", state)
	}

	inj.AddRule(faultinject.Rule{Name: "slow-tail", Match: "send:" + tail, Latency: grayTailLatency})

	// Strikes accumulate one per slow success; the breaker must open on
	// the third and not before.
	for i := 1; i <= 3; i++ {
		if _, err := kv.Get(ctx, "bk"); err != nil {
			t.Fatalf("gray get %d: %v", i, err)
		}
		state, strikes := stateOf(tail)
		if i < 3 && state != "closed" {
			t.Fatalf("breaker state after %d strikes = %q, want closed", i, state)
		}
		if i == 3 && state != "open" {
			t.Fatalf("breaker state after %d strikes = %q (strikes=%d), want open", i, state, strikes)
		}
	}

	// Open breaker: reads fail over to an upstream chain member — fast
	// and successful, without waiting out the slow tail.
	start := time.Now()
	if v, err := kv.Get(ctx, "bk"); err != nil || string(v) != "bv" {
		t.Fatalf("failover get = %q, %v", v, err)
	}
	if elapsed := time.Since(start); elapsed >= grayTailLatency {
		t.Errorf("failover get took %v: it waited on the open-breaker tail", elapsed)
	}
	if state, _ := stateOf(tail); state != "open" {
		t.Fatalf("breaker state during failover = %q, want open", state)
	}

	// The breaker-state gauge mirrors the snapshot (closed=0 open=1
	// half-open=2).
	var buf bytes.Buffer
	c.Obs().WritePrometheus(&buf)
	gauge := fmt.Sprintf(`jiffy_client_breaker_state{server=%q}`, tail)
	if v := metricValue(buf.String(), gauge); v != 1 {
		t.Errorf("%s = %v, want 1 (open)", gauge, v)
	}

	// Heal the tail and wait out the cooldown: the next read admits a
	// single half-open probe, which succeeds fast and closes the
	// breaker — traffic returns to the tail.
	inj.RemoveRule("slow-tail")
	time.Sleep(cooldown + 20*time.Millisecond)
	if _, err := kv.Get(ctx, "bk"); err != nil {
		t.Fatalf("post-heal get: %v", err)
	}
	if state, strikes := stateOf(tail); state != "closed" || strikes != 0 {
		t.Fatalf("post-heal breaker = %q/%d strikes, want closed/0", state, strikes)
	}
}

// TestChaosGrayFailureProbation exercises the server→controller leg: a
// chain head whose forward round trips stall past SlowHopThreshold for
// SlowHopStreak writes files a Degraded report; the controller's probe
// finds the successor alive and places it on probation — no death, no
// chain splice, no membership change — steering new allocations to
// healthy servers until recovery probes lift it.
func TestChaosGrayFailureProbation(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos scenario")
	}
	inj := faultinject.New(1303, nil)
	cfg := core.TestConfig()
	cfg.LeaseDuration = time.Minute
	cfg.ChainLength = 2
	cfg.RPCTimeout = 2 * time.Second
	cfg.SlowHopThreshold = 5 * time.Millisecond
	cfg.SlowHopStreak = 3
	cluster, tail := grayCluster(t, inj, cfg)
	ctx := context.Background()

	c, err := cluster.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	kv, err := c.OpenKV(ctx, "gray/kv")
	if err != nil {
		t.Fatal(err)
	}

	epochBefore := cluster.Controller.MembershipEpoch()
	inj.AddRule(faultinject.Rule{Name: "slow-tail", Match: "send:" + tail, Latency: grayTailLatency})

	// Each write's chain forward stalls on the slow successor; after
	// SlowHopStreak of them the head reports Degraded, asynchronously.
	for i := 0; i < 6; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("p%02d", i), []byte("v")); err != nil {
			t.Fatalf("gray put %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for !cluster.Controller.ServerProbated(tail) {
		if time.Now().After(deadline) {
			t.Fatal("slow chain successor never reached probation")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cluster.Controller.ServerDead(tail) {
		t.Fatal("fail-slow server was declared dead")
	}
	if got := cluster.Controller.MembershipEpoch(); got != epochBefore {
		t.Fatalf("probation changed the membership epoch: %d -> %d", epochBefore, got)
	}
	var buf bytes.Buffer
	cluster.Controller.Obs().WritePrometheus(&buf)
	if v := metricValue(buf.String(), "jiffy_ctrl_servers_degraded"); v != 1 {
		t.Errorf("jiffy_ctrl_servers_degraded = %v, want 1", v)
	}

	// The probated chain keeps serving: acked writes remain readable —
	// probation must never splice or lose the slow member's data.
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("p%02d", i)
		if v, err := kv.Get(ctx, key); err != nil || string(v) != "v" {
			t.Fatalf("acked write %s lost under probation: %q, %v", key, v, err)
		}
	}

	// New allocations steer away from the probated server while the
	// healthy pool suffices.
	if _, _, err := c.CreatePrefix(ctx, "gray/fresh", nil, DSKV, 1, 0); err != nil {
		t.Fatal(err)
	}
	open, err := cluster.Controller.Open("gray/fresh")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range open.Map.Blocks {
		for _, member := range e.Replicas() {
			if member.Server == tail {
				t.Fatalf("new chain member %v placed on probated server", member)
			}
		}
	}
	if len(open.Probation) != 1 || open.Probation[0] != tail {
		t.Fatalf("OpenResp.Probation = %v, want [%s]", open.Probation, tail)
	}

	// Heal the server; consecutive clean recovery probes lift the
	// probation and re-admit it to allocation.
	inj.RemoveRule("slow-tail")
	for i := 0; i < core.DefaultProbationRecoveryProbes; i++ {
		cluster.Controller.ProbeProbationNow()
	}
	if cluster.Controller.ServerProbated(tail) {
		t.Fatal("probation not lifted after clean recovery probes")
	}
}
